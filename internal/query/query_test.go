package query

import (
	"fmt"
	"strings"
	"testing"

	"github.com/datacron-project/datacron/internal/geo"
	"github.com/datacron-project/datacron/internal/model"
	"github.com/datacron-project/datacron/internal/onto"
	"github.com/datacron-project/datacron/internal/partition"
	"github.com/datacron-project/datacron/internal/rdf"
	"github.com/datacron-project/datacron/internal/store"
)

var worldBox = geo.NewBBox(22, 34, 30, 42)

// fixtureStore builds a small world: 3 vessels, 1 aircraft, a grid of
// position nodes.
func fixtureStore(t testing.TB, part partition.Partitioner) *store.Sharded {
	s := store.NewSharded(part, worldBox)
	vessels := []model.Entity{
		{ID: "V1", Domain: model.Maritime, Name: "BLUE STAR", Type: "CARGO", LengthM: 120},
		{ID: "V2", Domain: model.Maritime, Name: "RED STAR", Type: "TANKER", LengthM: 200},
		{ID: "V3", Domain: model.Maritime, Name: "GREEN STAR", Type: "CARGO", LengthM: 90},
	}
	for _, e := range vessels {
		s.AddEntity(e)
	}
	s.AddEntity(model.Entity{ID: "A1", Domain: model.Aviation, Name: "AEE101"})
	// V1 inside the Saronic box at ts 1000..5000, V2 north, V3 sparse.
	for i := 0; i < 5; i++ {
		s.AddPositionRecord(model.Position{
			EntityID: "V1", TS: int64(1000 + i*1000), Pt: geo.Pt(23.5+float64(i)*0.01, 37.8),
			SpeedMS: 7, CourseDeg: 90, Domain: model.Maritime,
		})
		s.AddPositionRecord(model.Position{
			EntityID: "V2", TS: int64(1000 + i*1000), Pt: geo.Pt(23.0, 40.5),
			SpeedMS: 2, CourseDeg: 180, Domain: model.Maritime,
		})
	}
	s.AddPositionRecord(model.Position{
		EntityID: "V3", TS: 9000, Pt: geo.Pt(25.0, 36.0), SpeedMS: 12, CourseDeg: 45, Domain: model.Maritime,
	})
	return s
}

func hashStore(t testing.TB) *store.Sharded { return fixtureStore(t, partition.NewHash(4)) }

func TestParseBasics(t *testing.T) {
	q, err := Parse(`SELECT ?v ?name WHERE {
		?v rdf:type dat:Vessel .
		?v dat:name ?name .
	} LIMIT 10`)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Vars) != 2 || q.Vars[0] != "v" {
		t.Errorf("vars = %v", q.Vars)
	}
	if len(q.Patterns) != 2 || q.Limit != 10 {
		t.Errorf("patterns/limit: %+v", q)
	}
	if q.Patterns[0].P.Term.Value != rdf.RDFType {
		t.Errorf("prefix expansion failed: %v", q.Patterns[0].P)
	}
}

func TestParseFilters(t *testing.T) {
	q, err := Parse(`SELECT ?n WHERE {
		?n dat:longitude ?lon . ?n dat:latitude ?lat . ?n dat:timestamp ?t . ?n dat:speed ?s .
		FILTER st:within(?lon, ?lat, 23.0, 37.0, 24.0, 38.0)
		FILTER st:during(?t, 0, 10000)
		FILTER st:dwithin(?lon, ?lat, 23.5, 37.5, 5000)
		FILTER (?s >= 5.0)
	}`)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Filters) != 4 {
		t.Fatalf("filters = %d", len(q.Filters))
	}
	box, ok := q.SpatialBounds()
	if !ok {
		t.Fatal("no spatial bounds")
	}
	if box.MinLon < 23.0-0.2 || box.MaxLon > 24.0 {
		t.Errorf("bounds = %v", box)
	}
	from, to, ok := q.TimeBounds()
	if !ok || from != 0 || to != 10000 {
		t.Errorf("time bounds = %d..%d ok=%v", from, to, ok)
	}
}

func TestParseErrors(t *testing.T) {
	tests := []struct {
		name string
		src  string
	}{
		{"empty", ""},
		{"no where", "SELECT ?x"},
		{"empty where", "SELECT ?x WHERE { }"},
		{"unterminated", "SELECT ?x WHERE { ?x rdf:type"},
		{"missing dot", "SELECT ?x WHERE { ?x rdf:type dat:Vessel }"},
		{"unknown prefix", "SELECT ?x WHERE { ?x foo:bar ?y . }"},
		{"bare ident", "SELECT ?x WHERE { ?x type ?y . }"},
		{"projected unused", "SELECT ?z WHERE { ?x rdf:type ?y . }"},
		{"filter unused var", "SELECT ?x WHERE { ?x rdf:type ?y . FILTER (?q > 5) }"},
		{"bad builtin", "SELECT ?x WHERE { ?x rdf:type ?y . FILTER st:nope(?x) }"},
		{"within arity", "SELECT ?x WHERE { ?x dat:longitude ?l . FILTER st:within(?l, 1.0) }"},
		{"during arity", "SELECT ?x WHERE { ?x dat:timestamp ?t . FILTER st:during(?t) }"},
		{"dwithin arity", "SELECT ?x WHERE { ?x dat:longitude ?l . FILTER st:dwithin(?l, 5) }"},
		{"bad op", "SELECT ?x WHERE { ?x dat:speed ?s . FILTER (?s ~ 5) }"},
		{"trailing", "SELECT ?x WHERE { ?x rdf:type ?y . } garbage"},
		{"bad limit", "SELECT ?x WHERE { ?x rdf:type ?y . } LIMIT x"},
		{"unterminated string", `SELECT ?x WHERE { ?x dat:name "abc . }`},
		{"unterminated iri", "SELECT ?x WHERE { ?x <http://a b . }"},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Parse(tc.src); err == nil {
				t.Errorf("expected parse error for %q", tc.src)
			}
		})
	}
}

func TestExecuteTypeQuery(t *testing.T) {
	s := hashStore(t)
	e := NewEngine(s)
	res, err := e.Execute(`SELECT ?v WHERE { ?v rdf:type dat:Vessel . }`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d, want 3 (dedup across replicated shards)", len(res.Rows))
	}
}

func TestExecuteJoin(t *testing.T) {
	s := hashStore(t)
	e := NewEngine(s)
	res, err := e.Execute(`SELECT ?name WHERE {
		?v rdf:type dat:Vessel .
		?v dat:vehicleType "CARGO" .
		?v dat:name ?name .
	}`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(res.Rows))
	}
	got := []string{res.Rows[0][0].Value, res.Rows[1][0].Value}
	if got[0] != "BLUE STAR" || got[1] != "GREEN STAR" {
		t.Errorf("names = %v", got)
	}
}

func TestExecuteSpatialQuery(t *testing.T) {
	for _, part := range []partition.Partitioner{
		partition.NewHash(4),
		partition.NewGrid(geo.NewGrid(worldBox, 16, 16), 4),
		partition.NewHilbert(worldBox, 6, 4),
	} {
		part := part
		t.Run(part.Name(), func(t *testing.T) {
			s := fixtureStore(t, part)
			e := NewEngine(s)
			res, err := e.Execute(`SELECT ?n ?who WHERE {
				?n rdf:type dat:SemanticNode .
				?n dat:ofMovingObject ?who .
				?n dat:longitude ?lon . ?n dat:latitude ?lat .
				FILTER st:within(?lon, ?lat, 23.3, 37.5, 24.0, 38.0)
			}`)
			if err != nil {
				t.Fatal(err)
			}
			// Only V1's 5 nodes are inside the box.
			if len(res.Rows) != 5 {
				t.Fatalf("rows = %d, want 5", len(res.Rows))
			}
			for _, row := range res.Rows {
				if row[1] != onto.EntityIRI("V1") {
					t.Errorf("unexpected entity %v", row[1])
				}
			}
		})
	}
}

func TestSpatialPruningVisitsFewerShards(t *testing.T) {
	s := fixtureStore(t, partition.NewHilbert(worldBox, 6, 8))
	e := NewEngine(s)
	res, err := e.Execute(`SELECT ?n WHERE {
		?n dat:longitude ?lon . ?n dat:latitude ?lat .
		FILTER st:within(?lon, ?lat, 23.4, 37.7, 23.7, 37.9)
	}`)
	if err != nil {
		t.Fatal(err)
	}
	if res.ShardsVisited >= 8 {
		t.Errorf("no pruning: visited %d shards", res.ShardsVisited)
	}
	if len(res.Rows) != 5 {
		t.Errorf("rows = %d, want 5", len(res.Rows))
	}
}

func TestExecuteTemporalFilter(t *testing.T) {
	s := hashStore(t)
	e := NewEngine(s)
	res, err := e.Execute(`SELECT ?n WHERE {
		?n rdf:type dat:SemanticNode .
		?n dat:timestamp ?t .
		FILTER st:during(?t, 2000, 3000)
	}`)
	if err != nil {
		t.Fatal(err)
	}
	// V1 and V2 each have nodes at ts 2000 and 3000.
	if len(res.Rows) != 4 {
		t.Errorf("rows = %d, want 4", len(res.Rows))
	}
}

func TestExecuteValueFilter(t *testing.T) {
	s := hashStore(t)
	e := NewEngine(s)
	res, err := e.Execute(`SELECT ?n WHERE {
		?n dat:speed ?s .
		FILTER (?s > 10)
	}`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %d, want 1 (only V3 is fast)", len(res.Rows))
	}
}

func TestExecuteDWithin(t *testing.T) {
	s := hashStore(t)
	e := NewEngine(s)
	res, err := e.Execute(`SELECT ?n WHERE {
		?n dat:longitude ?lon . ?n dat:latitude ?lat .
		FILTER st:dwithin(?lon, ?lat, 23.5, 37.8, 3000)
	}`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 || len(res.Rows) > 5 {
		t.Errorf("rows = %d, want 1..5", len(res.Rows))
	}
}

func TestExecuteLimit(t *testing.T) {
	s := hashStore(t)
	e := NewEngine(s)
	res, err := e.Execute(`SELECT ?n WHERE { ?n rdf:type dat:SemanticNode . } LIMIT 3`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Errorf("rows = %d, want 3", len(res.Rows))
	}
}

func TestExecuteSelectStar(t *testing.T) {
	s := hashStore(t)
	e := NewEngine(s)
	res, err := e.Execute(`SELECT WHERE { ?v rdf:type dat:Aircraft . ?v dat:name ?name . }`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Vars) != 2 {
		t.Errorf("vars = %v", res.Vars)
	}
	if len(res.Rows) != 1 || res.Rows[0][1].Value != "AEE101" {
		t.Errorf("rows = %v", res.Rows)
	}
}

func TestDeterministicResults(t *testing.T) {
	s := hashStore(t)
	e := NewEngine(s)
	q := `SELECT ?n ?t WHERE { ?n rdf:type dat:SemanticNode . ?n dat:timestamp ?t . }`
	a, err := e.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	b, err := e.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Rows) != len(b.Rows) {
		t.Fatal("row counts differ across runs")
	}
	for i := range a.Rows {
		for j := range a.Rows[i] {
			if a.Rows[i][j] != b.Rows[i][j] {
				t.Fatal("row order not deterministic")
			}
		}
	}
}

func TestParallelismMatchesSerial(t *testing.T) {
	s := fixtureStore(t, partition.NewGrid(geo.NewGrid(worldBox, 16, 16), 8))
	q := `SELECT ?n ?who WHERE {
		?n rdf:type dat:SemanticNode .
		?n dat:ofMovingObject ?who .
	}`
	serial := NewEngine(s)
	serial.Parallelism = 1
	parallel := NewEngine(s)
	parallel.Parallelism = 8
	a, err := serial.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	b, err := parallel.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Rows) != len(b.Rows) {
		t.Fatalf("serial %d rows, parallel %d", len(a.Rows), len(b.Rows))
	}
	for i := range a.Rows {
		if a.Rows[i][0] != b.Rows[i][0] {
			t.Fatal("rows differ")
		}
	}
}

func TestRepeatedVariableInPattern(t *testing.T) {
	// ?x dat:knows ?x must only match reflexive triples.
	s := store.NewSharded(partition.NewHash(2), worldBox)
	knows := rdf.NewIRI(onto.NS + "knows")
	s.AddGlobal([]onto.TripleT{
		{S: rdf.NewIRI("e:a"), P: knows, O: rdf.NewIRI("e:a")},
		{S: rdf.NewIRI("e:a"), P: knows, O: rdf.NewIRI("e:b")},
	})
	e := NewEngine(s)
	res, err := e.Execute(`SELECT ?x WHERE { ?x dat:knows ?x . }`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].Value != "e:a" {
		t.Errorf("reflexive match rows = %v", res.Rows)
	}
}

func TestQueryStringRoundTrip(t *testing.T) {
	q := MustParse(`SELECT ?v WHERE { ?v rdf:type dat:Vessel . FILTER (?v != "x") } LIMIT 5`)
	s := q.String()
	for _, want := range []string{"SELECT ?v", "WHERE {", "LIMIT 5"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
}

func TestFormatTable(t *testing.T) {
	s := hashStore(t)
	e := NewEngine(s)
	res, err := e.Execute(`SELECT ?name WHERE { ?v dat:name ?name . ?v rdf:type dat:Vessel . }`)
	if err != nil {
		t.Fatal(err)
	}
	out := FormatTable(res)
	if !strings.Contains(out, "?name") || !strings.Contains(out, "BLUE STAR") {
		t.Errorf("table = %q", out)
	}
}

func TestPlannerOrdersBoundFirst(t *testing.T) {
	q := MustParse(`SELECT ?n WHERE {
		?n dat:ofMovingObject ?v .
		?v rdf:type dat:Vessel .
	}`)
	plan := planPatterns(q.Patterns, nil)
	// The type pattern has 2 constants vs 1: must come first.
	if plan[0].P.Term.Value != rdf.RDFType {
		t.Errorf("plan order: %v first", plan[0])
	}
}

func TestPlannerPrefersLowCardinalityPredicate(t *testing.T) {
	// Two patterns with identical structure (1 constant each): the one
	// whose predicate is rarer in this shard must be evaluated first.
	s := store.NewSharded(partition.NewHash(1), worldBox)
	rare := rdf.NewIRI(onto.NS + "rare")
	common := rdf.NewIRI(onto.NS + "common")
	var triples []onto.TripleT
	triples = append(triples, onto.TripleT{S: rdf.NewIRI("e:a"), P: rare, O: rdf.NewLiteral("x")})
	for i := 0; i < 50; i++ {
		triples = append(triples, onto.TripleT{
			S: rdf.NewIRI(fmt.Sprintf("e:%d", i)), P: common, O: rdf.NewLiteral("y"),
		})
	}
	s.AddGlobal(triples)
	q := MustParse(`SELECT ?a ?b WHERE { ?a dat:common ?b . ?a dat:rare ?b . }`)
	plan := planPatterns(q.Patterns, s.View(0))
	if plan[0].P.Term != rare {
		t.Errorf("plan order: %v first, want the rare predicate", plan[0])
	}
	// Unknown predicates estimate to zero and plan first of all.
	q2 := MustParse(`SELECT ?a ?b WHERE { ?a dat:common ?b . ?a dat:unseen ?b . }`)
	plan2 := planPatterns(q2.Patterns, s.View(0))
	if plan2[0].P.Term.Value != onto.NS+"unseen" {
		t.Errorf("plan order: %v first, want the unseen predicate", plan2[0])
	}
}

func TestCmpFilterStringAndNumeric(t *testing.T) {
	get := func(name string) (rdf.Term, bool) {
		switch name {
		case "num":
			return rdf.NewDouble(5), true
		case "str":
			return rdf.NewLiteral("beta"), true
		}
		return rdf.Term{}, false
	}
	tests := []struct {
		f    CmpFilter
		want bool
	}{
		{CmpFilter{"num", OpGT, rdf.NewDouble(4)}, true},
		{CmpFilter{"num", OpLE, rdf.NewDouble(4)}, false},
		{CmpFilter{"num", OpNE, rdf.NewDouble(5)}, false},
		{CmpFilter{"str", OpGT, rdf.NewLiteral("alpha")}, true},
		{CmpFilter{"str", OpEQ, rdf.NewLiteral("beta")}, true},
		{CmpFilter{"missing", OpEQ, rdf.NewLiteral("x")}, false},
	}
	for i, tc := range tests {
		if got := tc.f.Eval(get); got != tc.want {
			t.Errorf("case %d: %v = %v", i, tc.f, got)
		}
	}
}

func BenchmarkQuerySpatialJoin(b *testing.B) {
	s := fixtureStore(b, partition.NewHilbert(worldBox, 6, 4))
	e := NewEngine(s)
	q := MustParse(`SELECT ?n ?who WHERE {
		?n rdf:type dat:SemanticNode .
		?n dat:ofMovingObject ?who .
		?n dat:longitude ?lon . ?n dat:latitude ?lat .
		FILTER st:within(?lon, ?lat, 23.3, 37.5, 24.0, 38.0)
	}`)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Run(q); err != nil {
			b.Fatal(err)
		}
	}
}
