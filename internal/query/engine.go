package query

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"time"

	"github.com/datacron-project/datacron/internal/geo"
	"github.com/datacron-project/datacron/internal/obs"
	"github.com/datacron-project/datacron/internal/rdf"
	"github.com/datacron-project/datacron/internal/store"
)

// Engine evaluates queries over a sharded store: each shard's plan orders
// patterns greedily by bound-slot count with per-shard predicate
// cardinalities as the tiebreak, shard candidates come from the spatial and
// temporal FILTER bounds via the partitioner, the same bounds prune whole
// sealed segments inside each candidate shard, every candidate shard is
// evaluated independently in parallel (global triples are replicated so the
// evaluation never crosses shards), and rows are merged with set semantics.
type Engine struct {
	st *store.Sharded
	// Parallelism bounds concurrent shard evaluations; 0 means the number
	// of candidate shards.
	Parallelism int
	// DisableBlockScan forces the per-triple FindID callback walk on sealed
	// segments instead of the block path (numeric-column range scans driven
	// by FILTER bounds). The flag exists for differential testing and as an
	// emergency fallback; the block path is on by default.
	DisableBlockScan bool
	// cache memoises parsed queries by canonicalized text (see plancache.go).
	cache *planCache
}

// NewEngine returns an engine over the given store.
func NewEngine(st *store.Sharded) *Engine {
	return &Engine{st: st, cache: newPlanCache(defaultPlanCacheSize)}
}

// PlanFacts describes how a query actually ran: the executed physical
// operator chain (execution order, with per-stage output cardinalities)
// and whether the plan came from the plan cache.
type PlanFacts struct {
	Stages   []obs.PlanStage
	CacheHit bool
}

// Result is a query answer.
type Result struct {
	Vars          []string
	Rows          [][]rdf.Term
	ShardsVisited int
	// SegmentsPruned counts sealed segments skipped across the visited
	// shards because their anchor time range or bounding box cannot
	// intersect the query's FILTER bounds.
	SegmentsPruned int
	Elapsed        time.Duration
	Plan           PlanFacts
}

// Execute parses (through the plan cache) and runs a query string.
func (e *Engine) Execute(src string) (*Result, error) {
	q, hit, err := e.ParseCached(src)
	if err != nil {
		return nil, err
	}
	return e.run(q, hit)
}

// Run evaluates a parsed query.
func (e *Engine) Run(q *Query) (*Result, error) { return e.run(q, false) }

// Explain lowers the query to its physical plan without executing it:
// the -explain rendering (per-stage Rows stays -1).
func (e *Engine) Explain(q *Query) []obs.PlanStage {
	return collectStages(finalizeOps(q, &scanOp{e: e, q: q}))
}

// run lowers the logical plan onto a physical operator chain — scan
// (patterns+filters+join over the tiered store) feeding group/aggregate,
// sort and limit — executes it, and reports the plan facts.
func (e *Engine) run(q *Query, cacheHit bool) (*Result, error) {
	start := time.Now()
	scan := &scanOp{e: e, q: q}
	root := finalizeOps(q, scan)
	rel, err := root.exec()
	if err != nil {
		return nil, err
	}
	return &Result{
		Vars:           rel.cols,
		Rows:           rel.rows,
		ShardsVisited:  scan.shardsVisited,
		SegmentsPruned: scan.segsPruned,
		Elapsed:        time.Since(start),
		Plan:           PlanFacts{Stages: collectStages(root), CacheHit: cacheHit},
	}, nil
}

// scanRelation is the scan operator's body: evaluate patterns and filters
// over every candidate shard in parallel and return the canonically sorted
// distinct rows of the query's input projection, plus shard/segment facts.
func (e *Engine) scanRelation(q *Query) (rel relation, shardsVisited, segsPruned int) {
	vars := q.InputVars()

	// Shard pruning from spatiotemporal filter bounds; the same bounds
	// prune sealed segments inside each shard.
	candidates := e.candidates(q)
	box, hasBox := q.SpatialBounds()
	from, to, hasTime := q.TimeBounds()
	vb := store.ViewBounds{Box: box, HasBox: hasBox, From: from, To: to, HasTime: hasTime}

	par := e.Parallelism
	if par <= 0 || par > len(candidates) {
		par = len(candidates)
	}
	if par == 0 {
		return relation{cols: vars}, 0, 0
	}

	// Numeric candidate bounds per variable, pushed into sealed-segment
	// scans by the block path.
	var bounds map[string]numBound
	if !e.DisableBlockScan {
		bounds = numericBounds(q.Filters)
	}

	var mu sync.Mutex
	seen := make(map[string]struct{})
	var rows [][]rdf.Term
	e.st.EachShardView(candidates, par, vb, func(i int, v *rdf.View, pruned int) {
		// Plan per shard: predicate cardinalities differ across shards and
		// change as segments seal and age out.
		plan := planPatterns(q.Patterns, v)
		local := evalShard(v, plan, q.Filters, bounds)
		if len(local) == 0 {
			mu.Lock()
			segsPruned += pruned
			mu.Unlock()
			return
		}
		// Decode and key rows outside the merge lock so parallel shards
		// only serialise on the dedup map itself.
		type keyedRow struct {
			key string
			row []rdf.Term
		}
		decoded := make([]keyedRow, 0, len(local))
		for _, b := range local {
			row := make([]rdf.Term, len(vars))
			for j, vn := range vars {
				if id, ok := b[vn]; ok {
					t, _ := v.Dict().Decode(id)
					row[j] = t
				}
			}
			decoded = append(decoded, keyedRow{key: rowKey(row), row: row})
		}
		mu.Lock()
		defer mu.Unlock()
		segsPruned += pruned
		for _, kr := range decoded {
			if _, dup := seen[kr.key]; dup {
				continue
			}
			seen[kr.key] = struct{}{}
			rows = append(rows, kr.row)
		}
	})

	// Canonical sort makes the scan's output deterministic, pins the fold
	// order of downstream float aggregates (reproducible sums), and is the
	// pre-LIMIT order — aggregates see every distinct row because LIMIT is
	// a separate operator that runs after group/sort, so
	// `SELECT COUNT ... LIMIT n` still measures, not echoes the limit.
	sortRows(rows)
	return relation{cols: vars, rows: rows}, len(candidates), segsPruned
}

// candidates returns the shard indexes to evaluate.
func (e *Engine) candidates(q *Query) []int {
	box, hasBox := q.SpatialBounds()
	from, to, hasTime := q.TimeBounds()
	if !hasBox && !hasTime {
		out := make([]int, e.st.NumShards())
		for i := range out {
			out[i] = i
		}
		return out
	}
	if !hasBox {
		box = geo.NewBBox(-180, -90, 180, 90)
	}
	return e.st.Partitioner().Candidates(box, from, to)
}

// binding maps variable name to term id within one shard.
type binding map[string]rdf.ID

// planPatterns orders patterns greedily: start from the most-bound pattern,
// then repeatedly pick the pattern with the most slots bound given already
// planned variables (preferring connected patterns avoids Cartesian
// blowup). Ties are broken by estimated cardinality from the graph's
// per-tier predicate statistics — with g == nil the planner falls back to
// the purely structural heuristic.
func planPatterns(patterns []TriplePattern, g rdf.Graph) []TriplePattern {
	remaining := append([]TriplePattern(nil), patterns...)
	bound := map[string]bool{}
	var plan []TriplePattern
	for len(remaining) > 0 {
		bestIdx := 0
		bestScore := -1
		bestCard := 0
		for i, tp := range remaining {
			score := tp.boundCount(bound) * 2
			// Prefer patterns connected to the bound set.
			for _, v := range tp.vars() {
				if bound[v] {
					score++
				}
			}
			card := estimateCard(tp, g)
			if score > bestScore || (score == bestScore && card < bestCard) {
				bestScore = score
				bestCard = card
				bestIdx = i
			}
		}
		chosen := remaining[bestIdx]
		plan = append(plan, chosen)
		for _, v := range chosen.vars() {
			bound[v] = true
		}
		remaining = append(remaining[:bestIdx], remaining[bestIdx+1:]...)
	}
	return plan
}

// estimateCard estimates how many triples a pattern can match on g: the
// predicate cardinality when the predicate is a known constant (0 when the
// shard has never seen it — nothing can match, evaluate first and finish),
// the graph size otherwise.
func estimateCard(tp TriplePattern, g rdf.Graph) int {
	if g == nil {
		return 0
	}
	if !tp.P.IsVar {
		id, ok := g.Dict().Lookup(tp.P.Term)
		if !ok {
			return 0
		}
		return g.PredCard(id)
	}
	return g.Len()
}

// numBound is the closed numeric candidate interval for one variable.
// [Lo, Hi] is unconditional: derived from filters that reject non-numeric
// bindings outright, so it is sound on any graph. [CLo, CHi] is
// conditional: derived from plain comparison FILTERs, whose
// string-comparison fallback can accept non-numeric bindings — it may only
// be intersected in on segments whose seal-time statistics prove every
// object of the scanned predicate is numeric (Segment.NumericOnly; see
// DESIGN.md §13).
type numBound struct {
	Lo, Hi   float64
	CLo, CHi float64
	cond     bool // any conditional clamp present
}

// numericBounds derives per-variable candidate intervals from the query's
// filters. st:during and st:within reject any binding whose term does not
// parse as a number, so restricting a pattern's object candidates to
// numeric values inside the (conjoined) interval can only drop rows the
// filter would drop anyway — the exact filter still runs on every surviving
// row, so the interval only needs to be a superset. st:during bounds are
// int64; they are widened by one ulp after the float64 conversion so values
// that round across the boundary above 2^53 stay inside.
//
// Plain comparison FILTERs against a numeric constant clamp only the
// conditional pair: on a predicate proved all-numeric at seal time their
// Eval takes the float branch for every binding, so the interval is exact
// there — but on a mixed predicate the string fallback could keep a
// non-numeric row the numeric column cannot represent, so scanPattern
// applies the conditional pair only under Segment.NumericOnly. A NaN
// constant clamps nothing (no interval represents its comparisons).
func numericBounds(filters []Filter) map[string]numBound {
	var out map[string]numBound
	bound := func(v string) *numBound {
		if out == nil {
			out = make(map[string]numBound)
		}
		b, ok := out[v]
		if !ok {
			b = numBound{
				Lo: math.Inf(-1), Hi: math.Inf(1),
				CLo: math.Inf(-1), CHi: math.Inf(1),
			}
		}
		out[v] = b
		return &b
	}
	clamp := func(v string, lo, hi float64) {
		b := bound(v)
		b.Lo = math.Max(b.Lo, lo)
		b.Hi = math.Min(b.Hi, hi)
		out[v] = *b
	}
	clampCond := func(v string, lo, hi float64) {
		b := bound(v)
		b.CLo = math.Max(b.CLo, lo)
		b.CHi = math.Min(b.CHi, hi)
		b.cond = true
		out[v] = *b
	}
	for _, f := range filters {
		switch ff := f.(type) {
		case DuringFilter:
			clamp(ff.TSVar,
				math.Nextafter(float64(ff.From), math.Inf(-1)),
				math.Nextafter(float64(ff.To), math.Inf(1)))
		case WithinFilter:
			clamp(ff.LonVar, ff.Box.MinLon, ff.Box.MaxLon)
			clamp(ff.LatVar, ff.Box.MinLat, ff.Box.MaxLat)
		case CmpFilter:
			v, ok := ff.Value.Float()
			if !ok || math.IsNaN(v) {
				continue
			}
			switch ff.Op {
			case OpLT, OpLE:
				clampCond(ff.Var, math.Inf(-1), v)
			case OpGT, OpGE:
				clampCond(ff.Var, v, math.Inf(1))
			case OpEQ:
				clampCond(ff.Var, v, v)
			}
		}
	}
	return out
}

// scanPattern streams the triples matching (s, p, o) to fn. With no bound
// on the object variable it is exactly Graph.FindID. With a bound, views
// dispatch per part (early-stop propagates across parts, mirroring
// View.FindID) and sealed segments answer from their value-sorted numeric
// column — a binary-search range scan instead of a walk over every triple
// of the predicate. The mutable head store and the global store keep the
// callback path: their triples are few and carry no sealed columns.
func scanPattern(g rdf.Graph, s, p, o rdf.ID, ob *numBound, fn func(rdf.Triple) bool) {
	if ob == nil {
		g.FindID(s, p, o, fn)
		return
	}
	switch gg := g.(type) {
	case *rdf.View:
		stopped := false
		wrap := func(t rdf.Triple) bool {
			if !fn(t) {
				stopped = true
				return false
			}
			return true
		}
		for _, part := range gg.Parts() {
			scanPattern(part, s, p, o, ob, wrap)
			if stopped {
				return
			}
		}
	case *rdf.Segment:
		if s == rdf.Wildcard && p != rdf.Wildcard {
			lo, hi := ob.Lo, ob.Hi
			if ob.cond && gg.NumericOnly(p) {
				// Comparison-filter bounds only intersect in when the
				// segment's seal-time stats prove the predicate all-numeric:
				// on a mixed predicate the filter's string fallback could
				// keep rows the numeric column does not carry.
				lo = math.Max(lo, ob.CLo)
				hi = math.Min(hi, ob.CHi)
			}
			if !math.IsInf(lo, -1) || !math.IsInf(hi, 1) {
				gg.NumericRange(p, lo, hi, fn)
				return
			}
			// Both sides unbounded (only conditional clamps existed and the
			// predicate is mixed): NumericRange would silently drop the
			// non-numeric rows, so take the plain scan.
		}
		gg.FindID(s, p, o, fn)
	default:
		g.FindID(s, p, o, fn)
	}
}

// evalShard evaluates the planned BGP + filters on one shard's merged
// tier view. bounds (nil = block path off) carries the numeric candidate
// intervals scanPattern pushes into sealed segments.
func evalShard(st rdf.Graph, plan []TriplePattern, filters []Filter, bounds map[string]numBound) []binding {
	bindings := []binding{{}}
	applied := make([]bool, len(filters))
	boundVars := map[string]bool{}

	applyFilters := func(bs []binding) []binding {
		for fi, f := range filters {
			if applied[fi] {
				continue
			}
			ready := true
			for _, v := range f.Vars() {
				if !boundVars[v] {
					ready = false
					break
				}
			}
			if !ready {
				continue
			}
			applied[fi] = true
			var kept []binding
			for _, b := range bs {
				get := func(name string) (rdf.Term, bool) {
					id, ok := b[name]
					if !ok {
						return rdf.Term{}, false
					}
					return st.Dict().Decode(id)
				}
				if f.Eval(get) {
					kept = append(kept, b)
				}
			}
			bs = kept
		}
		return bs
	}

	for _, tp := range plan {
		if len(bindings) == 0 {
			return nil
		}
		var next []binding
		for _, b := range bindings {
			sid, sv, ok := resolve(st, tp.S, b)
			if !ok {
				continue
			}
			pid, pv, ok := resolve(st, tp.P, b)
			if !ok {
				continue
			}
			oid, ov, ok := resolve(st, tp.O, b)
			if !ok {
				continue
			}
			// Push the object variable's numeric interval into the scan when
			// the slot is still unbound. A repeated variable inside the
			// pattern is unaffected: the equality guard below still runs on
			// every streamed triple.
			var ob *numBound
			if ov != "" && bounds != nil {
				if nb, okB := bounds[ov]; okB {
					ob = &nb
				}
			}
			scanPattern(st, sid, pid, oid, ob, func(t rdf.Triple) bool {
				// A variable repeated in one pattern must match itself: the
				// first occurrence binds, every later occurrence (S, P or O)
				// must equal the id already bound in this row, otherwise the
				// row is skipped. Without the guard on S and P a pattern like
				// `?x ?x ?o` silently rebound ?x and returned rows where the
				// two occurrences differ.
				nb := cloneBinding(b)
				if sv != "" {
					if prev, exists := nb[sv]; exists && prev != t.S {
						return true
					}
					nb[sv] = t.S
				}
				if pv != "" {
					if prev, exists := nb[pv]; exists && prev != t.P {
						return true
					}
					nb[pv] = t.P
				}
				if ov != "" {
					if prev, exists := nb[ov]; exists && prev != t.O {
						return true
					}
					nb[ov] = t.O
				}
				next = append(next, nb)
				return true
			})
		}
		for _, v := range tp.vars() {
			boundVars[v] = true
		}
		bindings = applyFilters(next)
	}
	return bindings
}

// resolve turns a pattern slot into (id, varName) under a binding. ok is
// false when the slot is a constant unknown to the shard's dictionary
// (no triple can match).
func resolve(st rdf.Graph, pt PatternTerm, b binding) (rdf.ID, string, bool) {
	if !pt.IsVar {
		id, ok := st.Dict().Lookup(pt.Term)
		if !ok {
			return 0, "", false
		}
		return id, "", true
	}
	if id, ok := b[pt.Var]; ok {
		return id, "", true
	}
	return rdf.Wildcard, pt.Var, true
}

func cloneBinding(b binding) binding {
	nb := make(binding, len(b)+1)
	for k, v := range b {
		nb[k] = v
	}
	return nb
}

// allVars lists the variables of a pattern list in first-appearance order.
func allVars(patterns []TriplePattern) []string {
	var out []string
	seen := map[string]bool{}
	for _, tp := range patterns {
		for _, v := range tp.vars() {
			if !seen[v] {
				seen[v] = true
				out = append(out, v)
			}
		}
	}
	return out
}

// rowKey serialises a row for set-semantics dedup across shards.
func rowKey(row []rdf.Term) string {
	var b strings.Builder
	for _, t := range row {
		b.WriteString(t.String())
		b.WriteByte('\x00')
	}
	return b.String()
}

// sortRows orders rows lexicographically for deterministic output.
func sortRows(rows [][]rdf.Term) {
	sort.Slice(rows, func(i, j int) bool {
		a, b := rows[i], rows[j]
		for k := 0; k < len(a) && k < len(b); k++ {
			as, bs := a[k].String(), b[k].String()
			if as != bs {
				return as < bs
			}
		}
		return len(a) < len(b)
	})
}

// FormatTable renders a result as an aligned text table for the CLI.
func FormatTable(r *Result) string {
	var b strings.Builder
	b.WriteString(strings.Join(varHeaders(r.Vars), "\t"))
	b.WriteByte('\n')
	for _, row := range r.Rows {
		cells := make([]string, len(row))
		for i, t := range row {
			cells[i] = t.String()
		}
		b.WriteString(strings.Join(cells, "\t"))
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "-- %d rows, %d shards, %v\n", len(r.Rows), r.ShardsVisited, r.Elapsed)
	return b.String()
}

func varHeaders(vars []string) []string {
	out := make([]string, len(vars))
	for i, v := range vars {
		out[i] = "?" + v
	}
	return out
}
