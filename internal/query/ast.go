// Package query implements the spatio-temporal query answering layer of the
// datAcron architecture: a SPARQL-like language ("stSPARQL-lite") with
// spatiotemporal FILTER builtins, evaluated in parallel over the shards of
// the parallel RDF store with partition pruning ("parallel query processing
// techniques for spatio-temporal query languages over interlinked data
// stored in parallel RDF stores", §2).
//
// Language sketch:
//
//	SELECT ?v ?name WHERE {
//	  ?v rdf:type dat:Vessel .
//	  ?v dat:name ?name .
//	  ?n dat:ofMovingObject ?v .
//	  ?n dat:longitude ?lon . ?n dat:latitude ?lat . ?n dat:timestamp ?t .
//	  FILTER st:within(?lon, ?lat, 24.0, 36.0, 26.0, 38.0)
//	  FILTER st:during(?t, 1489104000000, 1489111200000)
//	  FILTER (?speed >= 5.0)
//	} LIMIT 100
//
// Built-in prefixes: rdf:, dat: (the datAcron vocabulary), res: (resources).
package query

import (
	"fmt"
	"strings"

	"github.com/datacron-project/datacron/internal/geo"
	"github.com/datacron-project/datacron/internal/onto"
	"github.com/datacron-project/datacron/internal/rdf"
)

// builtinPrefixes maps the prefixes the parser expands.
var builtinPrefixes = map[string]string{
	"rdf": "http://www.w3.org/1999/02/22-rdf-syntax-ns#",
	"dat": onto.NS,
	"res": "http://www.datacron-project.eu/resource/",
	"owl": "http://www.w3.org/2002/07/owl#",
	"xsd": "http://www.w3.org/2001/XMLSchema#",
}

// PatternTerm is one slot of a triple pattern: a variable or a constant.
type PatternTerm struct {
	IsVar bool
	Var   string   // without '?'
	Term  rdf.Term // valid when !IsVar
}

// Var returns a variable pattern term.
func Var(name string) PatternTerm { return PatternTerm{IsVar: true, Var: name} }

// Const returns a constant pattern term.
func Const(t rdf.Term) PatternTerm { return PatternTerm{Term: t} }

// String implements fmt.Stringer.
func (p PatternTerm) String() string {
	if p.IsVar {
		return "?" + p.Var
	}
	return p.Term.String()
}

// TriplePattern is one basic graph pattern triple.
type TriplePattern struct{ S, P, O PatternTerm }

// vars returns the variables mentioned by the pattern.
func (t TriplePattern) vars() []string {
	var out []string
	for _, pt := range []PatternTerm{t.S, t.P, t.O} {
		if pt.IsVar {
			out = append(out, pt.Var)
		}
	}
	return out
}

// boundCount counts constant slots (the selectivity heuristic).
func (t TriplePattern) boundCount(bound map[string]bool) int {
	n := 0
	for _, pt := range []PatternTerm{t.S, t.P, t.O} {
		if !pt.IsVar || bound[pt.Var] {
			n++
		}
	}
	return n
}

// CmpOp is a comparison operator in value filters.
type CmpOp string

// Comparison operators.
const (
	OpLT CmpOp = "<"
	OpLE CmpOp = "<="
	OpGT CmpOp = ">"
	OpGE CmpOp = ">="
	OpEQ CmpOp = "="
	OpNE CmpOp = "!="
)

// Filter is a boolean predicate over variable bindings.
type Filter interface {
	// Vars returns the variables the filter needs bound.
	Vars() []string
	// Eval evaluates the filter over decoded terms.
	Eval(get func(string) (rdf.Term, bool)) bool
	fmt.Stringer
}

// CmpFilter compares a variable against a constant: FILTER (?x >= 5).
type CmpFilter struct {
	Var   string
	Op    CmpOp
	Value rdf.Term
}

// Vars implements Filter.
func (f CmpFilter) Vars() []string { return []string{f.Var} }

// String implements fmt.Stringer, rendering a form the parser accepts:
// numeric literals print raw, anything else as a quoted string.
func (f CmpFilter) String() string {
	val := f.Value.String()
	if _, ok := f.Value.Float(); ok {
		val = f.Value.Value
	}
	return fmt.Sprintf("FILTER (?%s %s %s)", f.Var, f.Op, val)
}

// Eval implements Filter: numeric when both sides parse as numbers,
// lexicographic otherwise.
func (f CmpFilter) Eval(get func(string) (rdf.Term, bool)) bool {
	t, ok := get(f.Var)
	if !ok {
		return false
	}
	if a, okA := t.Float(); okA {
		if b, okB := f.Value.Float(); okB {
			return cmpFloat(a, b, f.Op)
		}
	}
	return cmpString(t.Value, f.Value.Value, f.Op)
}

func cmpFloat(a, b float64, op CmpOp) bool {
	switch op {
	case OpLT:
		return a < b
	case OpLE:
		return a <= b
	case OpGT:
		return a > b
	case OpGE:
		return a >= b
	case OpEQ:
		return a == b
	case OpNE:
		return a != b
	}
	return false
}

func cmpString(a, b string, op CmpOp) bool {
	switch op {
	case OpLT:
		return a < b
	case OpLE:
		return a <= b
	case OpGT:
		return a > b
	case OpGE:
		return a >= b
	case OpEQ:
		return a == b
	case OpNE:
		return a != b
	}
	return false
}

// WithinFilter is st:within(?lon, ?lat, minLon, minLat, maxLon, maxLat).
type WithinFilter struct {
	LonVar, LatVar string
	Box            geo.BBox
}

// Vars implements Filter.
func (f WithinFilter) Vars() []string { return []string{f.LonVar, f.LatVar} }

// String implements fmt.Stringer (parser-canonical form).
func (f WithinFilter) String() string {
	return fmt.Sprintf("FILTER st:within(?%s, ?%s, %g, %g, %g, %g)",
		f.LonVar, f.LatVar, f.Box.MinLon, f.Box.MinLat, f.Box.MaxLon, f.Box.MaxLat)
}

// Eval implements Filter.
func (f WithinFilter) Eval(get func(string) (rdf.Term, bool)) bool {
	lon, ok1 := getFloat(get, f.LonVar)
	lat, ok2 := getFloat(get, f.LatVar)
	return ok1 && ok2 && f.Box.Contains(geo.Pt(lon, lat))
}

// DuringFilter is st:during(?t, fromMillis, toMillis), inclusive.
type DuringFilter struct {
	TSVar    string
	From, To int64
}

// Vars implements Filter.
func (f DuringFilter) Vars() []string { return []string{f.TSVar} }

// String implements fmt.Stringer.
func (f DuringFilter) String() string {
	return fmt.Sprintf("FILTER st:during(?%s, %d, %d)", f.TSVar, f.From, f.To)
}

// Eval implements Filter.
func (f DuringFilter) Eval(get func(string) (rdf.Term, bool)) bool {
	t, ok := get(f.TSVar)
	if !ok {
		return false
	}
	v, ok := t.Int()
	return ok && v >= f.From && v <= f.To
}

// DWithinFilter is st:dwithin(?lon, ?lat, centerLon, centerLat, metres).
type DWithinFilter struct {
	LonVar, LatVar string
	Center         geo.Point
	DistM          float64
}

// Vars implements Filter.
func (f DWithinFilter) Vars() []string { return []string{f.LonVar, f.LatVar} }

// String implements fmt.Stringer (parser-canonical form).
func (f DWithinFilter) String() string {
	return fmt.Sprintf("FILTER st:dwithin(?%s, ?%s, %g, %g, %g)",
		f.LonVar, f.LatVar, f.Center.Lon, f.Center.Lat, f.DistM)
}

// Eval implements Filter.
func (f DWithinFilter) Eval(get func(string) (rdf.Term, bool)) bool {
	lon, ok1 := getFloat(get, f.LonVar)
	lat, ok2 := getFloat(get, f.LatVar)
	return ok1 && ok2 && geo.Haversine(geo.Pt(lon, lat), f.Center) <= f.DistM
}

func getFloat(get func(string) (rdf.Term, bool), v string) (float64, bool) {
	t, ok := get(v)
	if !ok {
		return 0, false
	}
	return t.Float()
}

// AggFunc names an aggregate function.
type AggFunc string

// Aggregate functions.
const (
	AggCount AggFunc = "COUNT"
	AggSum   AggFunc = "SUM"
	AggMin   AggFunc = "MIN"
	AggMax   AggFunc = "MAX"
	AggAvg   AggFunc = "AVG"
)

// Aggregate is one aggregate in the projection: COUNT, or FUNC(?var).
// Var is empty only for the legacy bare COUNT form, which counts distinct
// result rows.
type Aggregate struct {
	Func AggFunc
	Var  string
}

// OutName is the output column the aggregate produces: "count" for the
// bare COUNT, otherwise e.g. "sum_speed" for SUM(?speed).
func (a Aggregate) OutName() string {
	if a.Var == "" {
		return "count"
	}
	return strings.ToLower(string(a.Func)) + "_" + a.Var
}

// String renders the parser-canonical form.
func (a Aggregate) String() string {
	if a.Var == "" {
		return string(a.Func)
	}
	return fmt.Sprintf("%s(?%s)", a.Func, a.Var)
}

// OrderKey is one ORDER BY key. Var names an output column (a projected
// pattern variable, a GROUP BY variable, or an aggregate's OutName).
type OrderKey struct {
	Var  string
	Desc bool
}

// Query is a parsed query: the logical plan the planner lowers to a
// physical operator tree (see physical.go).
type Query struct {
	Vars     []string    // projected pattern variables; empty = all in pattern order
	Aggs     []Aggregate // projected aggregates
	GroupBy  []string    // grouping variables
	OrderBy  []OrderKey  // result ordering over output columns
	Patterns []TriplePattern
	Filters  []Filter
	Limit    int // 0 = unlimited
}

// patternVars returns every variable in the WHERE clause, in first-mention
// order.
func (q *Query) patternVars() []string { return allVars(q.Patterns) }

// InputVars returns the columns the scan must produce for the final
// operators (group/aggregate/sort/limit) to run: for a plain query the
// projection itself; for an aggregating query the union of plain projected
// variables, GROUP BY variables and aggregate arguments. Aggregates run
// over the DISTINCT rows of exactly these columns — set semantics, like
// the legacy bare COUNT (which counts distinct rows of the projection).
func (q *Query) InputVars() []string {
	if len(q.Aggs) == 0 && len(q.GroupBy) == 0 {
		if len(q.Vars) > 0 {
			return q.Vars
		}
		return q.patternVars()
	}
	seen := map[string]bool{}
	var out []string
	add := func(v string) {
		if v != "" && !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	for _, v := range q.Vars {
		add(v)
	}
	for _, v := range q.GroupBy {
		add(v)
	}
	for _, a := range q.Aggs {
		add(a.Var)
	}
	if len(out) == 0 {
		// Bare "SELECT COUNT WHERE {…}": count distinct full rows.
		return q.patternVars()
	}
	return out
}

// OutputVars returns the result columns the query produces, in order:
// grouping columns first (the projected variables when given, else the
// GROUP BY list), then one column per aggregate.
func (q *Query) OutputVars() []string {
	if len(q.Aggs) == 0 && len(q.GroupBy) == 0 {
		if len(q.Vars) > 0 {
			return q.Vars
		}
		return q.patternVars()
	}
	var out []string
	if len(q.GroupBy) > 0 {
		if len(q.Vars) > 0 {
			out = append(out, q.Vars...)
		} else {
			out = append(out, q.GroupBy...)
		}
	}
	for _, a := range q.Aggs {
		out = append(out, a.OutName())
	}
	return out
}

// StripFinal returns a copy of the query with grouping, aggregation,
// ordering and LIMIT removed and the projection widened to InputVars: the
// per-node partial query of a scatter-gather execution. The coordinator
// merges the distinct partial rows and applies Finalize — running the same
// group/sort/limit operators once over the merged set — which is exactly
// what a single node computes (see DESIGN.md §16). The receiver is not
// mutated, so cached plans stay valid.
func (q *Query) StripFinal() *Query {
	return &Query{
		Vars:     q.InputVars(),
		Patterns: q.Patterns,
		Filters:  q.Filters,
	}
}

// String renders a canonical form of the query.
func (q *Query) String() string {
	var b strings.Builder
	b.WriteString("SELECT")
	if len(q.Vars) == 0 && len(q.Aggs) == 0 {
		b.WriteString(" *")
	}
	for _, v := range q.Vars {
		b.WriteString(" ?" + v)
	}
	for _, a := range q.Aggs {
		b.WriteString(" " + a.String())
	}
	b.WriteString(" WHERE {")
	for _, p := range q.Patterns {
		fmt.Fprintf(&b, " %s %s %s .", p.S, p.P, p.O)
	}
	for _, f := range q.Filters {
		b.WriteString(" " + f.String())
	}
	b.WriteString(" }")
	if len(q.GroupBy) > 0 {
		b.WriteString(" GROUP BY")
		for _, v := range q.GroupBy {
			b.WriteString(" ?" + v)
		}
	}
	if len(q.OrderBy) > 0 {
		b.WriteString(" ORDER BY")
		for _, k := range q.OrderBy {
			b.WriteString(" ?" + k.Var)
			if k.Desc {
				b.WriteString(" DESC")
			}
		}
	}
	if q.Limit > 0 {
		fmt.Fprintf(&b, " LIMIT %d", q.Limit)
	}
	return b.String()
}

// SpatialBounds extracts the conjunction of spatial constraints for shard
// pruning: the intersection of all st:within boxes (plus the bounding boxes
// of st:dwithin circles). ok is false when no spatial filter exists.
func (q *Query) SpatialBounds() (geo.BBox, bool) {
	found := false
	box := geo.BBox{MinLon: -180, MinLat: -90, MaxLon: 180, MaxLat: 90}
	for _, f := range q.Filters {
		switch ff := f.(type) {
		case WithinFilter:
			box = box.Intersection(ff.Box)
			found = true
		case DWithinFilter:
			// Conservative degree buffer for the circle.
			degLat := ff.DistM / 111_000
			degLon := degLat * 2 // generous at mid latitudes
			b := geo.NewBBox(ff.Center.Lon-degLon, ff.Center.Lat-degLat, ff.Center.Lon+degLon, ff.Center.Lat+degLat)
			box = box.Intersection(b)
			found = true
		}
	}
	return box, found
}

// TimeBounds extracts the conjunction of temporal constraints for shard
// pruning. ok is false when no temporal filter exists.
func (q *Query) TimeBounds() (from, to int64, ok bool) {
	from, to = -1<<62, 1<<62
	for _, f := range q.Filters {
		if df, isDuring := f.(DuringFilter); isDuring {
			if df.From > from {
				from = df.From
			}
			if df.To < to {
				to = df.To
			}
			ok = true
		}
	}
	return from, to, ok
}
