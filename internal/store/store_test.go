package store

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/datacron-project/datacron/internal/geo"
	"github.com/datacron-project/datacron/internal/model"
	"github.com/datacron-project/datacron/internal/onto"
	"github.com/datacron-project/datacron/internal/partition"
	"github.com/datacron-project/datacron/internal/rdf"
	"github.com/datacron-project/datacron/internal/synth"
)

var box = geo.NewBBox(22, 34, 30, 42)

func posAt(id string, lon, lat float64, ts int64) model.Position {
	return model.Position{EntityID: id, TS: ts, Pt: geo.Pt(lon, lat), SpeedMS: 5, CourseDeg: 90}
}

func TestAddAndRangeQuery(t *testing.T) {
	for _, part := range []partition.Partitioner{
		partition.NewHash(4),
		partition.NewGrid(geo.NewGrid(box, 16, 16), 4),
		partition.NewHilbert(box, 6, 4),
		partition.NewTemporal(0, 1_000_000, 4),
	} {
		part := part
		t.Run(part.Name(), func(t *testing.T) {
			s := NewSharded(part, box)
			// 10x10 grid of positions over the world, ts = index.
			n := 0
			for i := 0; i < 10; i++ {
				for j := 0; j < 10; j++ {
					lon := 22.5 + float64(i)*0.7
					lat := 34.5 + float64(j)*0.7
					s.AddPositionRecord(posAt(fmt.Sprintf("V%d", n), lon, lat, int64(n*1000)))
					n++
				}
			}
			// Query a sub-box over all time.
			qbox := geo.NewBBox(24, 36, 26, 38)
			results, visited := s.RangeQuery(qbox, 0, 1_000_000)
			if visited == 0 || visited > 4 {
				t.Errorf("visited = %d", visited)
			}
			// Verify exactly the right hits by brute force.
			want := 0
			n = 0
			for i := 0; i < 10; i++ {
				for j := 0; j < 10; j++ {
					lon := 22.5 + float64(i)*0.7
					lat := 34.5 + float64(j)*0.7
					if qbox.Contains(geo.Pt(lon, lat)) {
						want++
					}
					n++
				}
			}
			if len(results) != want {
				t.Errorf("hits = %d, want %d", len(results), want)
			}
			for _, r := range results {
				if !qbox.Contains(r.Pt) {
					t.Errorf("false positive at %v", r.Pt)
				}
			}
		})
	}
}

func TestRangeQueryTimeFilter(t *testing.T) {
	s := NewSharded(partition.NewHash(4), box)
	for i := 0; i < 100; i++ {
		s.AddPositionRecord(posAt("V1", 25, 37, int64(i)*1000))
	}
	results, _ := s.RangeQuery(box, 10_000, 19_999)
	if len(results) != 10 {
		t.Errorf("time-filtered hits = %d, want 10", len(results))
	}
	for _, r := range results {
		if r.TS < 10_000 || r.TS > 19_999 {
			t.Errorf("hit outside time range: %d", r.TS)
		}
	}
}

func TestRangeQueryEmptyAndDisjoint(t *testing.T) {
	s := NewSharded(partition.NewHilbert(box, 6, 4), box)
	results, visited := s.RangeQuery(geo.NewBBox(100, 0, 110, 10), 0, 1)
	if len(results) != 0 {
		t.Error("hits for disjoint box")
	}
	if visited != 0 {
		t.Errorf("visited %d shards for disjoint box", visited)
	}
}

func TestGlobalTriplesReplicated(t *testing.T) {
	s := NewSharded(partition.NewHash(3), box)
	e := model.Entity{ID: "237", Domain: model.Maritime, Name: "TEST SHIP"}
	s.AddEntity(e)
	obj := onto.EntityIRI(e.ID)
	for i := 0; i < s.NumShards(); i++ {
		found := false
		s.View(i).Find(&obj, &onto.PredName, nil, func(_, _, o rdf.Term) bool {
			found = o.Value == "TEST SHIP"
			return false
		})
		if !found {
			t.Errorf("shard %d missing replicated entity", i)
		}
	}
}

func TestAnchoredTriplesColocated(t *testing.T) {
	s := NewSharded(partition.NewGrid(geo.NewGrid(box, 8, 8), 4), box)
	p := posAt("V9", 25, 37, 12345)
	s.AddPositionRecord(p)
	node := onto.NodeIRI(p.EntityID, p.TS)
	// Exactly one shard has the node's triples.
	holders := 0
	for i := 0; i < s.NumShards(); i++ {
		n := 0
		s.View(i).Find(&node, nil, nil, func(_, _, _ rdf.Term) bool { n++; return true })
		if n > 0 {
			holders++
			if n < 8 {
				t.Errorf("shard %d holds only %d of the node's triples", i, n)
			}
		}
	}
	if holders != 1 {
		t.Errorf("node triples in %d shards, want exactly 1", holders)
	}
}

func TestShardLoadsAndBalance(t *testing.T) {
	s := NewSharded(partition.NewHash(8), box)
	for i := 0; i < 4000; i++ {
		s.AddPositionRecord(posAt(fmt.Sprintf("V%d", i%200), 22.5+float64(i%70)*0.1, 34.5+float64(i%60)*0.1, int64(i)))
	}
	loads := s.ShardLoads()
	total := 0
	for _, l := range loads {
		total += l
	}
	if total != 4000 {
		t.Errorf("total anchors = %d", total)
	}
	if bf := partition.BalanceFactor(loads); bf > 1.5 {
		t.Errorf("hash balance factor = %f", bf)
	}
}

func TestConcurrentLoad(t *testing.T) {
	s := NewSharded(partition.NewHilbert(box, 6, 4), box)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				s.AddPositionRecord(posAt(fmt.Sprintf("G%d-%d", g, i), 22.5+float64(i%70)*0.1, 34.5+float64(i%60)*0.1, int64(i)))
			}
		}(g)
	}
	wg.Wait()
	results, _ := s.RangeQuery(box, 0, 1<<60)
	if len(results) != 2000 {
		t.Errorf("hits after concurrent load = %d, want 2000", len(results))
	}
}

func TestEachShardParallelAndSubset(t *testing.T) {
	s := NewSharded(partition.NewHash(4), box)
	s.AddEntity(model.Entity{ID: "x", Name: "N"})
	var mu sync.Mutex
	seen := map[int]bool{}
	s.EachShardParallel(func(i int, st *rdf.View) {
		mu.Lock()
		seen[i] = st.Len() > 0
		mu.Unlock()
	})
	if len(seen) != 4 {
		t.Errorf("visited %d shards", len(seen))
	}
	count := 0
	s.EachShardSubset([]int{1, 3}, 2, func(i int, st *rdf.View) {
		mu.Lock()
		count++
		mu.Unlock()
	})
	if count != 2 {
		t.Errorf("subset visited %d", count)
	}
	// Degenerate parallelism clamps.
	count = 0
	s.EachShardSubset([]int{0}, 0, func(i int, st *rdf.View) { mu.Lock(); count++; mu.Unlock() })
	if count != 1 {
		t.Error("clamped parallelism broke subset execution")
	}
}

func TestAddEventAnchored(t *testing.T) {
	s := NewSharded(partition.NewGrid(geo.NewGrid(box, 8, 8), 4), box)
	ev := model.Event{Type: "loitering", Entity: "V1", StartTS: 1000, EndTS: 2000, Where: geo.Pt(25, 37)}
	s.AddEvent(ev)
	results, _ := s.RangeQuery(geo.NewBBox(24.9, 36.9, 25.1, 37.1), 0, 10_000)
	if len(results) != 1 {
		t.Fatalf("event anchor hits = %d", len(results))
	}
	term, ok := s.Dict().Decode(results[0].Node)
	if !ok || term != onto.EventIRI("loitering", "V1", 1000) {
		t.Errorf("anchored node = %v", term)
	}
}

func TestLoadScenarioEndToEnd(t *testing.T) {
	sc := synth.GenMaritime(synth.MaritimeConfig{Seed: 2, Vessels: 8, Duration: 30 * time.Minute})
	s := NewSharded(partition.NewHilbert(box, 7, 4), box)
	for _, e := range sc.Entities {
		s.AddEntity(e)
	}
	s.LoadPositions(sc.Positions)
	if s.Len() == 0 {
		t.Fatal("nothing loaded")
	}
	results, _ := s.RangeQuery(sc.Box, 0, 1<<60)
	if len(results) != len(sc.Positions) {
		t.Errorf("anchors = %d, want %d", len(results), len(sc.Positions))
	}
}
