// Package store implements the parallel spatiotemporal RDF store of the
// datAcron architecture: interlinked RDF data "stored in parallel RDF
// stores, using sophisticated RDF partitioning algorithms" (§2). A Sharded
// store owns N independent shards, places each spatiotemporally-anchored
// graph fragment with a partition.Partitioner, replicates global
// (dimension) triples to every shard so per-shard query evaluation never
// needs cross-shard joins, and maintains a per-shard spatiotemporal grid
// index over the anchored nodes for range queries.
//
// Each shard is tiered (DESIGN.md §10): a small mutable head (rdf.Store)
// absorbs writes, sealed immutable segments (rdf.Segment) hold history in
// dense sorted arrays with per-segment statistics, and a never-sealed
// global store holds the replicated dimension triples. Sealing and
// time-based retention run through Maintain; readers see the merged tiers
// through rdf.View.
package store

import (
	"runtime"
	"sync"
	"sync/atomic"

	"github.com/datacron-project/datacron/internal/geo"
	"github.com/datacron-project/datacron/internal/onto"
	"github.com/datacron-project/datacron/internal/partition"
	"github.com/datacron-project/datacron/internal/rdf"
)

// Sharded is the parallel RDF store.
type Sharded struct {
	part   partition.Partitioner
	dict   *rdf.Dictionary // shared across shards
	shards []*Shard

	// nextSegID hands out globally-unique segment ids (also across
	// restarts: recovery advances it past every loaded segment).
	nextSegID atomic.Uint64
	// maxTS is the newest anchor timestamp ingested — the store's stream
	// clock, against which seal age and retention windows are measured.
	maxTS atomic.Int64

	// Lifetime tier-maintenance counters (for /metrics).
	seals          atomic.Int64
	segsDropped    atomic.Int64
	triplesDropped atomic.Int64
}

// Shard is one partition: a tiered RDF store plus a spatiotemporal index
// over the graph fragments anchored in it. Writes to a shard are serialised
// by its write lock; readers (range scans, per-shard query evaluation) take
// the read lock, so the store is safe for concurrent ingest and querying —
// the serving layer's core requirement.
type Shard struct {
	mu sync.RWMutex
	// global holds replicated dimension triples (entities, areas,
	// vocabulary). It is never sealed and never retained away.
	global *rdf.Store
	// head is the mutable tier: anchored fragments since the last seal.
	head    *rdf.Store
	entries []anchor        // head anchors, in insertion order
	cells   map[int][]int32 // grid cell → indexes into entries
	// segs are the sealed immutable segments, oldest first.
	segs []*segment
	grid geo.Grid
}

// anchor is one spatiotemporally-anchored node.
type anchor struct {
	pt   geo.Point
	ts   int64
	node rdf.ID
}

// NewSharded returns a store partitioned by part, indexing anchors on a
// 64x64 grid over worldBox.
func NewSharded(part partition.Partitioner, worldBox geo.BBox) *Sharded {
	dict := rdf.NewDictionary()
	shards := make([]*Shard, part.Shards())
	for i := range shards {
		shards[i] = &Shard{
			global: rdf.NewStore(dict),
			head:   rdf.NewStore(dict),
			grid:   geo.NewGrid(worldBox, 64, 64),
			cells:  make(map[int][]int32),
		}
	}
	return &Sharded{part: part, dict: dict, shards: shards}
}

// Dict returns the shared dictionary.
func (s *Sharded) Dict() *rdf.Dictionary { return s.dict }

// Partitioner returns the partitioner in use.
func (s *Sharded) Partitioner() partition.Partitioner { return s.part }

// NumShards returns the shard count.
func (s *Sharded) NumShards() int { return len(s.shards) }

// MaxAnchorTS returns the newest anchor timestamp ingested (the stream
// clock retention windows are measured against); 0 before the first anchor.
func (s *Sharded) MaxAnchorTS() int64 { return s.maxTS.Load() }

// View returns a merged read view over shard i's tiers
// (global + head + sealed segments). The view holds no lock: it is for
// single-threaded use (tests, tools); concurrent readers should go through
// EachShardParallel / EachShardSubset / EachShardView, which hold the shard
// read lock across fn.
func (s *Sharded) View(i int) *rdf.View {
	sh := s.shards[i]
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	v, _ := sh.viewLocked(ViewBounds{})
	return v
}

// ViewBounds carries a query's spatiotemporal bounds for segment pruning:
// a sealed segment whose anchor time range or bounding box cannot
// intersect the query is skipped entirely, the same way the partitioner
// prunes whole shards.
type ViewBounds struct {
	Box      geo.BBox
	HasBox   bool
	From, To int64
	HasTime  bool
}

// viewLocked builds the merged view under the caller-held shard lock,
// returning the number of segments pruned by vb.
func (sh *Shard) viewLocked(vb ViewBounds) (*rdf.View, int) {
	parts := make([]rdf.Graph, 0, 2+len(sh.segs))
	parts = append(parts, sh.global, sh.head)
	pruned := 0
	for _, seg := range sh.segs {
		if seg.prunedBy(vb) {
			pruned++
			continue
		}
		parts = append(parts, seg.g)
	}
	return rdf.NewView(sh.global.Dict(), parts...), pruned
}

// Len returns the total number of triples across shards and tiers (global
// triples are counted once per shard they are replicated to).
func (s *Sharded) Len() int {
	n := 0
	for _, sh := range s.shards {
		sh.mu.RLock()
		n += sh.global.Len() + sh.head.Len()
		for _, seg := range sh.segs {
			n += seg.g.Len()
		}
		sh.mu.RUnlock()
	}
	return n
}

// ShardLoads returns the number of anchored fragments per shard (all
// tiers), the load measure used by E3's balance metric.
func (s *Sharded) ShardLoads() []int {
	out := make([]int, len(s.shards))
	for i, sh := range s.shards {
		sh.mu.RLock()
		n := len(sh.entries)
		for _, seg := range sh.segs {
			n += len(seg.entries)
		}
		out[i] = n
		sh.mu.RUnlock()
	}
	return out
}

// AddGlobal replicates dimension triples (entities, areas, vocabulary) to
// every shard, so a per-shard BGP evaluation can join them locally.
func (s *Sharded) AddGlobal(triples []onto.TripleT) {
	for _, sh := range s.shards {
		sh.mu.Lock()
		for _, t := range triples {
			sh.global.Add(t.S, t.P, t.O)
		}
		sh.mu.Unlock()
	}
}

// AddAnchored places a graph fragment anchored at (key, pt, ts): its
// triples go to the head tier of the shard the partitioner assigns and
// node is registered in that shard's spatiotemporal index.
func (s *Sharded) AddAnchored(key string, pt geo.Point, ts int64, node rdf.Term, triples []onto.TripleT) {
	idx := s.part.Assign(key, pt, ts)
	sh := s.shards[idx]
	sh.mu.Lock()
	for _, t := range triples {
		sh.head.Add(t.S, t.P, t.O)
	}
	id := sh.head.Dict().Encode(node)
	entryIdx := int32(len(sh.entries))
	sh.entries = append(sh.entries, anchor{pt: pt, ts: ts, node: id})
	cell := sh.grid.CellID(pt)
	sh.cells[cell] = append(sh.cells[cell], entryIdx)
	sh.mu.Unlock()
	for {
		cur := s.maxTS.Load()
		if ts <= cur || s.maxTS.CompareAndSwap(cur, ts) {
			return
		}
	}
}

// RangeResult is one spatiotemporal range query hit.
type RangeResult struct {
	Node rdf.ID
	Pt   geo.Point
	TS   int64
	// Shard records which shard held the hit (for experiment accounting).
	Shard int
}

// RangeQuery returns the anchored nodes within box and [fromTS, toTS],
// evaluating candidate shards in parallel. visited reports how many shards
// were consulted (the pruning measure of E3).
func (s *Sharded) RangeQuery(box geo.BBox, fromTS, toTS int64) (results []RangeResult, visited int) {
	results, visited, _ = s.RangeQueryN(box, fromTS, toTS, 0)
	return results, visited
}

// RangeQueryN is RangeQuery with a result bound: when limit > 0, each
// shard stops scanning after limit+1 hits and at most limit results are
// returned, with truncated reporting whether more matches exist. This
// bounds both the work and the allocation of a query, which is what lets
// the serving layer expose range queries to untrusted clients. limit <= 0
// returns everything.
func (s *Sharded) RangeQueryN(box geo.BBox, fromTS, toTS int64, limit int) (results []RangeResult, visited int, truncated bool) {
	cands := s.part.Candidates(box, fromTS, toTS)
	visited = len(cands)
	if visited == 0 {
		return nil, 0, false
	}
	perShard := 0
	if limit > 0 {
		// limit+1 per shard so the merged length distinguishes "exactly
		// limit" from "more exist".
		perShard = limit + 1
	}
	type shardOut struct {
		idx int
		res []RangeResult
	}
	outCh := make(chan shardOut, len(cands))
	workers := runtime.GOMAXPROCS(0)
	if workers > len(cands) {
		workers = len(cands)
	}
	work := make(chan int, len(cands))
	for _, c := range cands {
		work <- c
	}
	close(work)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for c := range work {
				outCh <- shardOut{c, s.shards[c].rangeLocal(box, fromTS, toTS, c, perShard)}
			}
		}()
	}
	wg.Wait()
	close(outCh)
	for so := range outCh {
		results = append(results, so.res...)
	}
	if limit > 0 && len(results) > limit {
		results = results[:limit]
		truncated = true
	}
	return results, visited, truncated
}

// rangeLocal scans one shard's grid indexes (sealed segments oldest first,
// then the head) under the shard's read lock, stopping after max hits when
// max > 0. Segment time bounds prune whole segments before their cells are
// touched.
func (sh *Shard) rangeLocal(box geo.BBox, fromTS, toTS int64, shardIdx, max int) []RangeResult {
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	var out []RangeResult
	scan := func(entries []anchor, cells map[int][]int32) bool {
		for _, cell := range sh.grid.CellsIn(box) {
			for _, ei := range cells[cell] {
				e := entries[ei]
				if e.ts < fromTS || e.ts > toTS || !box.Contains(e.pt) {
					continue
				}
				out = append(out, RangeResult{Node: e.node, Pt: e.pt, TS: e.ts, Shard: shardIdx})
				if max > 0 && len(out) >= max {
					return false
				}
			}
		}
		return true
	}
	for _, seg := range sh.segs {
		if len(seg.entries) == 0 || seg.maxTS < fromTS || seg.minTS > toTS || !seg.box.Intersects(box) {
			continue
		}
		if !scan(seg.entries, seg.cells) {
			return out
		}
	}
	scan(sh.entries, sh.cells)
	return out
}

// EachShardParallel runs fn over every shard's merged view concurrently
// and waits. fn must treat the view as read-only. Each invocation holds
// the shard's read lock, so it is safe to run while ingest is in flight
// (writes to that shard wait for fn).
func (s *Sharded) EachShardParallel(fn func(i int, v *rdf.View)) {
	var wg sync.WaitGroup
	wg.Add(len(s.shards))
	for i, sh := range s.shards {
		go func(i int, sh *Shard) {
			defer wg.Done()
			sh.mu.RLock()
			defer sh.mu.RUnlock()
			v, _ := sh.viewLocked(ViewBounds{})
			fn(i, v)
		}(i, sh)
	}
	wg.Wait()
}

// EachShardSubset runs fn over the given shard indexes with bounded
// parallelism and waits. Like EachShardParallel, fn runs under the shard's
// read lock and must treat the view as read-only.
func (s *Sharded) EachShardSubset(shardIdxs []int, parallelism int, fn func(i int, v *rdf.View)) {
	s.EachShardView(shardIdxs, parallelism, ViewBounds{}, func(i int, v *rdf.View, _ int) { fn(i, v) })
}

// EachShardView is EachShardSubset with segment pruning: each shard's view
// excludes sealed segments whose anchor time range or bounding box cannot
// intersect vb, and fn additionally receives the number of segments pruned
// for that shard.
func (s *Sharded) EachShardView(shardIdxs []int, parallelism int, vb ViewBounds, fn func(i int, v *rdf.View, prunedSegs int)) {
	if parallelism < 1 {
		parallelism = 1
	}
	work := make(chan int, len(shardIdxs))
	for _, i := range shardIdxs {
		work <- i
	}
	close(work)
	var wg sync.WaitGroup
	for w := 0; w < parallelism; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				sh := s.shards[i]
				sh.mu.RLock()
				v, pruned := sh.viewLocked(vb)
				fn(i, v, pruned)
				sh.mu.RUnlock()
			}
		}()
	}
	wg.Wait()
}
