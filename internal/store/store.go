// Package store implements the parallel spatiotemporal RDF store of the
// datAcron architecture: interlinked RDF data "stored in parallel RDF
// stores, using sophisticated RDF partitioning algorithms" (§2). A Sharded
// store owns N independent rdf.Stores (the shards), places each
// spatiotemporally-anchored graph fragment with a partition.Partitioner,
// replicates global (dimension) triples to every shard so per-shard query
// evaluation never needs cross-shard joins, and maintains a per-shard
// spatiotemporal grid index over the anchored nodes for range queries.
package store

import (
	"runtime"
	"sync"

	"github.com/datacron-project/datacron/internal/geo"
	"github.com/datacron-project/datacron/internal/onto"
	"github.com/datacron-project/datacron/internal/partition"
	"github.com/datacron-project/datacron/internal/rdf"
)

// Sharded is the parallel RDF store.
type Sharded struct {
	part   partition.Partitioner
	dict   *rdf.Dictionary // shared across shards
	shards []*Shard
}

// Shard is one partition: an RDF store plus a spatiotemporal index over the
// graph fragments anchored in it. Writes to a shard are serialised by its
// write lock; readers (range scans, per-shard query evaluation) take the
// read lock, so the store is safe for concurrent ingest and querying — the
// serving layer's core requirement.
type Shard struct {
	mu      sync.RWMutex
	rdf     *rdf.Store
	grid    geo.Grid
	entries []anchor
	cells   map[int][]int32 // grid cell → indexes into entries
}

// anchor is one spatiotemporally-anchored node.
type anchor struct {
	pt   geo.Point
	ts   int64
	node rdf.ID
}

// NewSharded returns a store partitioned by part, indexing anchors on a
// 64x64 grid over worldBox.
func NewSharded(part partition.Partitioner, worldBox geo.BBox) *Sharded {
	dict := rdf.NewDictionary()
	shards := make([]*Shard, part.Shards())
	for i := range shards {
		shards[i] = &Shard{
			rdf:   rdf.NewStore(dict),
			grid:  geo.NewGrid(worldBox, 64, 64),
			cells: make(map[int][]int32),
		}
	}
	return &Sharded{part: part, dict: dict, shards: shards}
}

// Dict returns the shared dictionary.
func (s *Sharded) Dict() *rdf.Dictionary { return s.dict }

// Partitioner returns the partitioner in use.
func (s *Sharded) Partitioner() partition.Partitioner { return s.part }

// NumShards returns the shard count.
func (s *Sharded) NumShards() int { return len(s.shards) }

// Shard returns shard i's RDF store (for query evaluation).
func (s *Sharded) Shard(i int) *rdf.Store { return s.shards[i].rdf }

// Len returns the total number of triples across shards (global triples are
// counted once per shard they are replicated to).
func (s *Sharded) Len() int {
	n := 0
	for _, sh := range s.shards {
		sh.mu.RLock()
		n += sh.rdf.Len()
		sh.mu.RUnlock()
	}
	return n
}

// ShardLoads returns the number of anchored fragments per shard, the load
// measure used by E3's balance metric.
func (s *Sharded) ShardLoads() []int {
	out := make([]int, len(s.shards))
	for i, sh := range s.shards {
		sh.mu.RLock()
		out[i] = len(sh.entries)
		sh.mu.RUnlock()
	}
	return out
}

// AddGlobal replicates dimension triples (entities, areas, vocabulary) to
// every shard, so a per-shard BGP evaluation can join them locally.
func (s *Sharded) AddGlobal(triples []onto.TripleT) {
	for _, sh := range s.shards {
		sh.mu.Lock()
		for _, t := range triples {
			sh.rdf.Add(t.S, t.P, t.O)
		}
		sh.mu.Unlock()
	}
}

// AddAnchored places a graph fragment anchored at (key, pt, ts): its
// triples go to the shard the partitioner assigns and node is registered in
// that shard's spatiotemporal index.
func (s *Sharded) AddAnchored(key string, pt geo.Point, ts int64, node rdf.Term, triples []onto.TripleT) {
	idx := s.part.Assign(key, pt, ts)
	sh := s.shards[idx]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	for _, t := range triples {
		sh.rdf.Add(t.S, t.P, t.O)
	}
	id := sh.rdf.Dict().Encode(node)
	entryIdx := int32(len(sh.entries))
	sh.entries = append(sh.entries, anchor{pt: pt, ts: ts, node: id})
	cell := sh.grid.CellID(pt)
	sh.cells[cell] = append(sh.cells[cell], entryIdx)
}

// RangeResult is one spatiotemporal range query hit.
type RangeResult struct {
	Node rdf.ID
	Pt   geo.Point
	TS   int64
	// Shard records which shard held the hit (for experiment accounting).
	Shard int
}

// RangeQuery returns the anchored nodes within box and [fromTS, toTS],
// evaluating candidate shards in parallel. visited reports how many shards
// were consulted (the pruning measure of E3).
func (s *Sharded) RangeQuery(box geo.BBox, fromTS, toTS int64) (results []RangeResult, visited int) {
	results, visited, _ = s.RangeQueryN(box, fromTS, toTS, 0)
	return results, visited
}

// RangeQueryN is RangeQuery with a result bound: when limit > 0, each
// shard stops scanning after limit+1 hits and at most limit results are
// returned, with truncated reporting whether more matches exist. This
// bounds both the work and the allocation of a query, which is what lets
// the serving layer expose range queries to untrusted clients. limit <= 0
// returns everything.
func (s *Sharded) RangeQueryN(box geo.BBox, fromTS, toTS int64, limit int) (results []RangeResult, visited int, truncated bool) {
	cands := s.part.Candidates(box, fromTS, toTS)
	visited = len(cands)
	if visited == 0 {
		return nil, 0, false
	}
	perShard := 0
	if limit > 0 {
		// limit+1 per shard so the merged length distinguishes "exactly
		// limit" from "more exist".
		perShard = limit + 1
	}
	type shardOut struct {
		idx int
		res []RangeResult
	}
	outCh := make(chan shardOut, len(cands))
	workers := runtime.GOMAXPROCS(0)
	if workers > len(cands) {
		workers = len(cands)
	}
	work := make(chan int, len(cands))
	for _, c := range cands {
		work <- c
	}
	close(work)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for c := range work {
				outCh <- shardOut{c, s.shards[c].rangeLocal(box, fromTS, toTS, c, perShard)}
			}
		}()
	}
	wg.Wait()
	close(outCh)
	for so := range outCh {
		results = append(results, so.res...)
	}
	if limit > 0 && len(results) > limit {
		results = results[:limit]
		truncated = true
	}
	return results, visited, truncated
}

// rangeLocal scans one shard's grid index under the shard's read lock,
// stopping after max hits when max > 0.
func (sh *Shard) rangeLocal(box geo.BBox, fromTS, toTS int64, shardIdx, max int) []RangeResult {
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	var out []RangeResult
	for _, cell := range sh.grid.CellsIn(box) {
		for _, ei := range sh.cells[cell] {
			e := sh.entries[ei]
			if e.ts < fromTS || e.ts > toTS || !box.Contains(e.pt) {
				continue
			}
			out = append(out, RangeResult{Node: e.node, Pt: e.pt, TS: e.ts, Shard: shardIdx})
			if max > 0 && len(out) >= max {
				return out
			}
		}
	}
	return out
}

// EachShardParallel runs fn over every shard concurrently and waits. fn
// receives the shard index and its RDF store; it must treat the store as
// read-only. Each invocation holds the shard's read lock, so it is safe to
// run while ingest is in flight (writes to that shard wait for fn).
func (s *Sharded) EachShardParallel(fn func(i int, st *rdf.Store)) {
	var wg sync.WaitGroup
	wg.Add(len(s.shards))
	for i, sh := range s.shards {
		go func(i int, sh *Shard) {
			defer wg.Done()
			sh.mu.RLock()
			defer sh.mu.RUnlock()
			fn(i, sh.rdf)
		}(i, sh)
	}
	wg.Wait()
}

// EachShardSubset runs fn over the given shard indexes with bounded
// parallelism and waits. Like EachShardParallel, fn runs under the shard's
// read lock and must treat the store as read-only.
func (s *Sharded) EachShardSubset(shardIdxs []int, parallelism int, fn func(i int, st *rdf.Store)) {
	if parallelism < 1 {
		parallelism = 1
	}
	work := make(chan int, len(shardIdxs))
	for _, i := range shardIdxs {
		work <- i
	}
	close(work)
	var wg sync.WaitGroup
	for w := 0; w < parallelism; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				sh := s.shards[i]
				sh.mu.RLock()
				fn(i, sh.rdf)
				sh.mu.RUnlock()
			}
		}()
	}
	wg.Wait()
}
