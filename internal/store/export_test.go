package store

import (
	"bytes"
	"testing"

	"github.com/datacron-project/datacron/internal/geo"
	"github.com/datacron-project/datacron/internal/model"
	"github.com/datacron-project/datacron/internal/partition"
)

func TestExportImportRoundTrip(t *testing.T) {
	src := NewSharded(partition.NewHilbert(box, 6, 4), box)
	src.AddEntity(model.Entity{ID: "V1", Domain: model.Maritime, Name: "BLUE STAR", Type: "CARGO", LengthM: 100})
	for i := 0; i < 50; i++ {
		src.AddPositionRecord(posAt("V1", 23.5+float64(i)*0.01, 37.5, int64(i)*10000))
	}
	var buf bytes.Buffer
	if err := src.ExportNT(&buf); err != nil {
		t.Fatal(err)
	}
	dumpSize := buf.Len()
	if dumpSize == 0 {
		t.Fatal("empty export")
	}

	dst := NewSharded(partition.NewGrid(geo.NewGrid(box, 8, 8), 2), box) // different partitioner
	n, err := dst.ImportNT(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != 50 {
		t.Errorf("re-anchored %d positions, want 50", n)
	}
	// Spatiotemporal index rebuilt: range query works on the new store.
	results, _ := dst.RangeQuery(geo.NewBBox(23.4, 37.4, 24.2, 37.6), 0, 1<<60)
	if len(results) != 50 {
		t.Errorf("range hits after import = %d, want 50", len(results))
	}
	// Global entity data replicated on every shard of the new store.
	// Export both and compare canonical graphs.
	var a, b bytes.Buffer
	if err := src.ExportNT(&a); err != nil {
		t.Fatal(err)
	}
	if err := dst.ExportNT(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("round-tripped graph differs from original")
	}
}

func TestImportNTBadInput(t *testing.T) {
	dst := NewSharded(partition.NewHash(2), box)
	if _, err := dst.ImportNT(bytes.NewReader([]byte("not ntriples"))); err == nil {
		t.Error("garbage input must error")
	}
}

func TestExportDedupsGlobals(t *testing.T) {
	s := NewSharded(partition.NewHash(3), box)
	s.AddEntity(model.Entity{ID: "X", Name: "N"}) // replicated to 3 shards
	var buf bytes.Buffer
	if err := s.ExportNT(&buf); err != nil {
		t.Fatal(err)
	}
	// Each triple appears once despite replication: count lines.
	lines := bytes.Count(buf.Bytes(), []byte{'\n'})
	if lines != 2 { // type + name
		t.Errorf("exported %d lines, want 2", lines)
	}
}
