package store

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"syscall"
	"testing"
	"time"

	"github.com/datacron-project/datacron/internal/geo"
	"github.com/datacron-project/datacron/internal/model"
	"github.com/datacron-project/datacron/internal/onto"
	"github.com/datacron-project/datacron/internal/partition"
	"github.com/datacron-project/datacron/internal/rdf"
)

// exportString renders the canonical NT dump (the content-equality probe).
func exportString(t *testing.T, s *Sharded) string {
	t.Helper()
	var b bytes.Buffer
	if err := s.ExportNT(&b); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

func TestSealPreservesContent(t *testing.T) {
	s := buildTestStore(t)
	before := exportString(t, s)
	rangeBefore, _ := s.RangeQuery(geo.NewBBox(20, 35, 28, 40), 0, 1<<62)
	lenBefore := s.Len()

	st := s.Maintain(TierPolicy{}, true) // force-seal every head
	if st.Sealed == 0 || st.SealedTriples == 0 {
		t.Fatalf("force seal did nothing: %+v", st)
	}
	tiers := s.TierStats()
	if tiers.HeadTriples != 0 {
		t.Errorf("head not empty after seal: %d", tiers.HeadTriples)
	}
	if tiers.Segments == 0 || tiers.SealedTriples == 0 {
		t.Errorf("no sealed segments: %+v", tiers)
	}
	if got := exportString(t, s); got != before {
		t.Error("canonical export changed across seal")
	}
	if s.Len() != lenBefore {
		t.Errorf("Len changed across seal: %d vs %d", s.Len(), lenBefore)
	}
	rangeAfter, _ := s.RangeQuery(geo.NewBBox(20, 35, 28, 40), 0, 1<<62)
	if len(rangeAfter) != len(rangeBefore) {
		t.Errorf("range hits changed across seal: %d vs %d", len(rangeAfter), len(rangeBefore))
	}

	// Writes after a seal land in the fresh head and are visible merged.
	s.AddPositionRecord(model.Position{
		EntityID: "237000001", TS: 999_000, Pt: geo.Pt(21, 36), SpeedMS: 1,
	})
	if s.Len() != lenBefore+8 {
		t.Errorf("post-seal write: Len = %d, want %d", s.Len(), lenBefore+8)
	}
}

func TestSealMigratesDimensionResidue(t *testing.T) {
	// A head holding dimension triples (the flat v1 reload shape) must not
	// sand them into a retainable segment: they migrate to the global tier.
	box := geo.NewBBox(20, 35, 28, 40)
	s := NewSharded(partition.NewHash(2), box)
	for i := 0; i < 10; i++ {
		s.AddPositionRecord(model.Position{
			EntityID: "V1", TS: int64(i * 1000), Pt: geo.Pt(21, 36), SpeedMS: float64(i),
		})
	}
	// Force dimension triples into the head the way a v1 load does.
	for _, sh := range s.shards {
		sh.mu.Lock()
		for _, tr := range onto.EntityTriples(model.Entity{ID: "V1", Name: "RESIDUE", Type: "CARGO"}) {
			sh.head.Add(tr.S, tr.P, tr.O)
		}
		sh.mu.Unlock()
	}
	s.Maintain(TierPolicy{}, true)
	// Retention far in the past drops every sealed segment...
	st := s.Maintain(TierPolicy{Retention: time.Millisecond}, false)
	if st.Dropped == 0 {
		t.Fatalf("retention dropped nothing: %+v", st)
	}
	// ...but the entity data survives in the global tier.
	obj := onto.EntityIRI("V1")
	found := false
	for i := 0; i < s.NumShards(); i++ {
		s.View(i).Find(&obj, &onto.PredName, nil, func(_, _, o rdf.Term) bool {
			found = found || o.Value == "RESIDUE"
			return true
		})
	}
	if !found {
		t.Error("dimension triples were retained away with the segment")
	}
}

func TestRetentionBoundsStore(t *testing.T) {
	box := geo.NewBBox(20, 35, 28, 40)
	s := NewSharded(partition.NewHash(2), box)
	pol := TierPolicy{SealTriples: 200, Retention: 100 * time.Second}
	var lens []int
	for i := 0; i < 5000; i++ {
		s.AddPositionRecord(model.Position{
			EntityID: fmt.Sprintf("V%d", i%7), TS: int64(i) * 1000,
			Pt: geo.Pt(20.5+float64(i%70)*0.1, 35.5+float64(i%40)*0.1), SpeedMS: 3,
		})
		if i%500 == 499 {
			s.Maintain(pol, false)
			lens = append(lens, s.Len())
		}
	}
	tiers := s.TierStats()
	if tiers.SegmentsDropped == 0 || tiers.TriplesDropped == 0 {
		t.Fatalf("retention never dropped: %+v", tiers)
	}
	// The triple count must plateau: the last probes stay within 2x of the
	// first post-warmup probe instead of growing linearly.
	mid, last := lens[len(lens)/2], lens[len(lens)-1]
	if last > mid*2 {
		t.Errorf("no plateau: mid=%d last=%d (probes %v)", mid, last, lens)
	}
	// Old data is gone, fresh data answers.
	old, _ := s.RangeQuery(box, 0, 1_000_000)
	if len(old) != 0 {
		t.Errorf("aged-out anchors still answer: %d", len(old))
	}
	fresh, _ := s.RangeQuery(box, 4_900_000, 5_000_000)
	if len(fresh) == 0 {
		t.Error("fresh anchors lost")
	}
}

func TestSealAfterAgeTrigger(t *testing.T) {
	box := geo.NewBBox(20, 35, 28, 40)
	s := NewSharded(partition.NewHash(1), box)
	s.AddPositionRecord(model.Position{EntityID: "V1", TS: 1000, Pt: geo.Pt(21, 36)})
	if st := s.Maintain(TierPolicy{SealAfter: time.Minute}, false); st.Sealed != 0 {
		t.Fatalf("sealed before the head aged: %+v", st)
	}
	// Advance the stream clock past the age threshold.
	s.AddPositionRecord(model.Position{EntityID: "V1", TS: 70_000, Pt: geo.Pt(21.1, 36)})
	if st := s.Maintain(TierPolicy{SealAfter: time.Minute}, false); st.Sealed != 1 {
		t.Fatalf("age trigger did not seal: %+v", st)
	}
}

func TestTieredSnapshotRoundTripAndReuse(t *testing.T) {
	box := geo.BBox{MinLon: 20, MinLat: 35, MaxLon: 28, MaxLat: 40}
	src := buildTestStore(t)
	src.Maintain(TierPolicy{}, true) // one sealed generation
	for i := 0; i < 50; i++ {        // plus fresh head data
		src.AddPositionRecord(model.Position{
			EntityID: "237000001", TS: int64(300_000 + 1000*i), Pt: geo.Pt(22+float64(i)*0.01, 37),
			SpeedMS: 4, CourseDeg: 10,
		})
	}

	segCache := t.TempDir()
	dir1 := t.TempDir()
	nSegs, err := src.WriteSnapshotTiered(dir1, segCache)
	if err != nil {
		t.Fatal(err)
	}
	if nSegs == 0 {
		t.Fatal("no segments referenced")
	}

	// Restore and compare content, partitioning and tier structure.
	dst := NewSharded(partition.NewHilbert(box, 5, 4), box)
	triples, anchors, err := dst.LoadSnapshot(dir1)
	if err != nil {
		t.Fatal(err)
	}
	if triples == 0 || anchors != 251 {
		t.Fatalf("loaded triples=%d anchors=%d", triples, anchors)
	}
	if got, want := exportString(t, dst), exportString(t, src); got != want {
		t.Error("canonical export differs after tiered round trip")
	}
	if got, want := dst.TierStats().Segments, src.TierStats().Segments; got != want {
		t.Errorf("restored %d segments, want %d", got, want)
	}
	if got, want := dst.ShardLoads(), src.ShardLoads(); fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("shard loads differ: %v vs %v", got, want)
	}
	r1, _ := src.RangeQuery(box, 0, 1<<62)
	r2, _ := dst.RangeQuery(box, 0, 1<<62)
	if len(r1) != len(r2) {
		t.Errorf("range results differ: %d vs %d", len(r1), len(r2))
	}

	// A new seal in the restored store must get a fresh segment id.
	files1 := map[string]bool{}
	for _, name := range dst.SegmentFiles() {
		files1[name] = true
	}
	dst.Maintain(TierPolicy{}, true)
	for _, name := range dst.SegmentFiles() {
		if name != "" && files1[name] && len(files1) == len(dst.SegmentFiles()) {
			t.Fatal("new seal reused an existing segment id")
		}
	}

	// Second snapshot from the source: segment files are hard-linked, not
	// rewritten — same inode in the cache and both snapshot dirs.
	dir2 := t.TempDir()
	if _, err := src.WriteSnapshotTiered(dir2, segCache); err != nil {
		t.Fatal(err)
	}
	for _, name := range src.SegmentFiles() {
		ci, err := os.Stat(filepath.Join(segCache, name))
		if err != nil {
			t.Fatal(err)
		}
		if n := ci.Sys().(*syscall.Stat_t).Nlink; n < 3 {
			t.Errorf("segment %s link count %d, want >=3 (cache + 2 snapshots)", name, n)
		}
		i1, err1 := os.Stat(filepath.Join(dir1, name))
		i2, err2 := os.Stat(filepath.Join(dir2, name))
		if err1 != nil || err2 != nil {
			t.Fatalf("segment missing from a snapshot dir: %v %v", err1, err2)
		}
		if !os.SameFile(i1, i2) || !os.SameFile(i1, ci) {
			t.Errorf("segment %s rewritten instead of linked", name)
		}
	}
}

func TestFlatSnapshotStillLoads(t *testing.T) {
	// v1 compatibility: a flat snapshot (no .segments files) loads into the
	// head tier and the first seal re-tiers it.
	src := buildTestStore(t)
	dir := t.TempDir()
	if err := src.WriteSnapshot(dir); err != nil {
		t.Fatal(err)
	}
	box := geo.BBox{MinLon: 20, MinLat: 35, MaxLon: 28, MaxLat: 40}
	dst := NewSharded(partition.NewHilbert(box, 5, 4), box)
	if _, _, err := dst.LoadSnapshot(dir); err != nil {
		t.Fatal(err)
	}
	if got, want := exportString(t, dst), exportString(t, src); got != want {
		t.Error("flat round trip changed content")
	}
	dst.Maintain(TierPolicy{}, true)
	if got, want := exportString(t, dst), exportString(t, src); got != want {
		t.Error("sealing a flat-loaded store changed content")
	}
}

func TestSegmentPruningInViews(t *testing.T) {
	box := geo.NewBBox(20, 35, 28, 40)
	s := NewSharded(partition.NewHash(1), box)
	// Two temporal generations, sealed separately.
	for i := 0; i < 20; i++ {
		s.AddPositionRecord(model.Position{EntityID: "V1", TS: int64(i * 1000), Pt: geo.Pt(21, 36)})
	}
	s.Maintain(TierPolicy{}, true)
	for i := 0; i < 20; i++ {
		s.AddPositionRecord(model.Position{EntityID: "V1", TS: int64(1_000_000 + i*1000), Pt: geo.Pt(25, 38)})
	}
	s.Maintain(TierPolicy{}, true)

	count := func(vb ViewBounds) (n, pruned int) {
		s.EachShardView([]int{0}, 1, vb, func(_ int, v *rdf.View, p int) {
			n = v.Len()
			pruned = p
		})
		return
	}
	all, pruned := count(ViewBounds{})
	if pruned != 0 {
		t.Fatalf("unbounded view pruned %d", pruned)
	}
	// Time bounds covering only the second generation prune the first.
	recent, prunedT := count(ViewBounds{HasTime: true, From: 1_000_000, To: 2_000_000})
	if prunedT != 1 {
		t.Errorf("time bounds pruned %d segments, want 1", prunedT)
	}
	if recent >= all {
		t.Errorf("pruned view not smaller: %d vs %d", recent, all)
	}
	// Spatial bounds away from the first generation's box prune it too.
	_, prunedB := count(ViewBounds{HasBox: true, Box: geo.NewBBox(24.5, 37.5, 26, 39)})
	if prunedB != 1 {
		t.Errorf("box bounds pruned %d segments, want 1", prunedB)
	}
}
