package store

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"github.com/datacron-project/datacron/internal/geo"
	"github.com/datacron-project/datacron/internal/model"
	"github.com/datacron-project/datacron/internal/partition"
)

// buildTestStore fills a sharded store with globals, positions and an
// event, the three anchor/triple shapes a snapshot must round-trip.
func buildTestStore(t *testing.T) *Sharded {
	t.Helper()
	box := geo.BBox{MinLon: 20, MinLat: 35, MaxLon: 28, MaxLat: 40}
	s := NewSharded(partition.NewHilbert(box, 5, 4), box)
	s.AddEntity(model.Entity{ID: "237000001", Domain: model.Maritime, Name: "TEST VESSEL", Type: "CARGO"})
	for i := 0; i < 200; i++ {
		s.AddPositionRecord(model.Position{
			EntityID: "237000001", Domain: model.Maritime,
			TS: int64(1000 * i), Pt: geo.Pt(20.5+float64(i)*0.03, 36.0+float64(i)*0.01),
			SpeedMS: 5.5, CourseDeg: 42,
		})
	}
	s.AddEvent(model.Event{Type: "loitering", Entity: "237000001", StartTS: 5000, EndTS: 9000,
		Where: geo.Pt(21, 36.2), DetectTS: 9000})
	return s
}

func TestStoreSnapshotRoundTrip(t *testing.T) {
	src := buildTestStore(t)
	dir := t.TempDir()
	if err := src.WriteSnapshot(dir); err != nil {
		t.Fatal(err)
	}

	box := geo.BBox{MinLon: 20, MinLat: 35, MaxLon: 28, MaxLat: 40}
	dst := NewSharded(partition.NewHilbert(box, 5, 4), box)
	triples, anchors, err := dst.LoadSnapshot(dir)
	if err != nil {
		t.Fatal(err)
	}
	if triples == 0 || anchors != 201 {
		t.Fatalf("loaded triples=%d anchors=%d, want >0 and 201", triples, anchors)
	}
	if got, want := dst.Len(), src.Len(); got != want {
		t.Errorf("restored Len = %d, want %d", got, want)
	}
	if got, want := dst.ShardLoads(), src.ShardLoads(); len(got) == len(want) {
		for i := range got {
			if got[i] != want[i] {
				t.Errorf("shard %d load = %d, want %d (partitioning not preserved)", i, got[i], want[i])
			}
		}
	}

	// Range queries agree exactly.
	res1, _ := src.RangeQuery(box, 0, 1<<62)
	res2, _ := dst.RangeQuery(box, 0, 1<<62)
	if len(res1) != len(res2) {
		t.Errorf("range results: src %d, restored %d", len(res1), len(res2))
	}

	// Canonical exports are byte-identical.
	var b1, b2 bytes.Buffer
	if err := src.ExportNT(&b1); err != nil {
		t.Fatal(err)
	}
	if err := dst.ExportNT(&b2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Error("canonical N-Triples exports differ after snapshot round trip")
	}

	// A second snapshot of the restored store is byte-identical per shard.
	dir2 := t.TempDir()
	if err := dst.WriteSnapshot(dir2); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < src.NumShards(); i++ {
		a, err := os.ReadFile(filepath.Join(dir, filepath.Base(shardFile(dir, i, "nt"))))
		if err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(shardFile(dir2, i, "nt"))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a, b) {
			t.Errorf("shard %d .nt differs across snapshot generations", i)
		}
	}
}
