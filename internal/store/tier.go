package store

import (
	"time"

	"github.com/datacron-project/datacron/internal/geo"
	"github.com/datacron-project/datacron/internal/rdf"
)

// segment is one sealed tier of a shard: an immutable rdf.Segment plus the
// slice of the spatiotemporal index that was sealed with it and the
// per-segment statistics (anchor time range and bounding box) that drive
// retention and query pruning.
type segment struct {
	id      uint64
	g       *rdf.Segment
	entries []anchor
	cells   map[int][]int32
	// Anchor statistics; zero-anchor segments carry an empty box and are
	// never pruned or retained away.
	minTS, maxTS int64
	box          geo.BBox
}

// prunedBy reports whether the segment cannot contribute to a query with
// the given bounds. Segments without anchors (pure non-anchored residue)
// are never pruned.
func (seg *segment) prunedBy(vb ViewBounds) bool {
	if len(seg.entries) == 0 {
		return false
	}
	if vb.HasTime && (seg.maxTS < vb.From || seg.minTS > vb.To) {
		return true
	}
	if vb.HasBox && !seg.box.Intersects(vb.Box) {
		return true
	}
	return false
}

// anchorStats computes the time range and bounding box of a sealed entry
// set.
func anchorStats(entries []anchor) (minTS, maxTS int64, box geo.BBox) {
	box = geo.EmptyBBox()
	for i, e := range entries {
		if i == 0 || e.ts < minTS {
			minTS = e.ts
		}
		if i == 0 || e.ts > maxTS {
			maxTS = e.ts
		}
		box = box.Extend(e.pt)
	}
	return minTS, maxTS, box
}

// TierPolicy parameterises seal and retention decisions. The zero value
// never seals and never drops.
type TierPolicy struct {
	// SealTriples seals a shard's head once it holds at least this many
	// triples (0 = no size trigger).
	SealTriples int
	// SealAfter seals a shard's head once its oldest anchor is this much
	// older than the stream clock (0 = no age trigger).
	SealAfter time.Duration
	// Retention drops whole sealed segments whose newest anchor is older
	// than the stream clock minus this window (0 = keep forever).
	Retention time.Duration
}

// Active reports whether the policy can ever seal or drop anything.
func (pol TierPolicy) Active() bool {
	return pol.SealTriples > 0 || pol.SealAfter > 0 || pol.Retention > 0
}

// MaintainStats reports what one Maintain pass did.
type MaintainStats struct {
	// Sealed segments created and the triples they absorbed.
	Sealed        int
	SealedTriples int
	// Dropped segments removed by retention and the triples they held.
	Dropped        int
	DroppedTriples int
}

// Maintain applies the tier policy to every shard: heads exceeding the
// seal thresholds (or any non-empty head, when force is set) are sealed
// into immutable segments, and sealed segments outside the retention
// window are dropped wholesale — anchors, triples and statistics together,
// which is what bounds memory under infinite ingest. Writers to a shard
// are excluded while it is maintained (per-shard write lock); for an
// atomic cut across the whole pipeline run it under the ingest barrier
// (core.Pipeline.MaintainStore does).
func (s *Sharded) Maintain(pol TierPolicy, force bool) MaintainStats {
	var st MaintainStats
	now := s.maxTS.Load()
	for _, sh := range s.shards {
		sh.mu.Lock()
		if s.shouldSeal(sh, pol, force, now) {
			if n := s.sealLocked(sh); n > 0 {
				st.Sealed++
				st.SealedTriples += n
			}
		}
		if pol.Retention > 0 && now > 0 {
			cutoff := now - pol.Retention.Milliseconds()
			kept := sh.segs[:0]
			for _, seg := range sh.segs {
				if len(seg.entries) > 0 && seg.maxTS < cutoff {
					st.Dropped++
					st.DroppedTriples += seg.g.Len()
					continue
				}
				kept = append(kept, seg)
			}
			// Let dropped segments be collected.
			for i := len(kept); i < len(sh.segs); i++ {
				sh.segs[i] = nil
			}
			sh.segs = kept
		}
		sh.mu.Unlock()
	}
	s.seals.Add(int64(st.Sealed))
	s.segsDropped.Add(int64(st.Dropped))
	s.triplesDropped.Add(int64(st.DroppedTriples))
	return st
}

// shouldSeal decides whether a shard's head is due, under the shard lock.
func (s *Sharded) shouldSeal(sh *Shard, pol TierPolicy, force bool, now int64) bool {
	n := sh.head.Len()
	if n == 0 {
		return false
	}
	if force {
		return true
	}
	if pol.SealTriples > 0 && n >= pol.SealTriples {
		return true
	}
	if pol.SealAfter > 0 && len(sh.entries) > 0 && now > 0 {
		oldest, _, _ := anchorStats(sh.entries)
		if now-oldest >= pol.SealAfter.Milliseconds() {
			return true
		}
	}
	return false
}

// sealLocked converts the shard's head into a sealed segment under the
// caller-held write lock and returns the number of triples sealed. Triples
// whose subject is an anchored node (position and event fragments) form
// the segment; any residue (dimension triples that reached the head, e.g.
// from a flat v1 snapshot load) migrates to the never-retained global
// store, so retention can never age out reference data.
func (s *Sharded) sealLocked(sh *Shard) int {
	if sh.head.Len() == 0 {
		return 0
	}
	anchored := make(map[rdf.ID]bool, len(sh.entries))
	for _, e := range sh.entries {
		anchored[e.node] = true
	}
	var sealed []rdf.Triple
	sh.head.FindID(rdf.Wildcard, rdf.Wildcard, rdf.Wildcard, func(t rdf.Triple) bool {
		if anchored[t.S] {
			sealed = append(sealed, t)
		} else {
			sh.global.AddID(t.S, t.P, t.O)
		}
		return true
	})
	if len(sealed) > 0 || len(sh.entries) > 0 {
		minTS, maxTS, box := anchorStats(sh.entries)
		sh.segs = append(sh.segs, &segment{
			id:      s.nextSegID.Add(1),
			g:       rdf.NewSegment(s.dict, sealed),
			entries: sh.entries,
			cells:   sh.cells,
			minTS:   minTS,
			maxTS:   maxTS,
			box:     box,
		})
	}
	n := len(sealed)
	sh.head = rdf.NewStore(s.dict)
	sh.entries = nil
	sh.cells = make(map[int][]int32)
	return n
}

// TierSnapshot is a point-in-time summary of the store's tier layout.
type TierSnapshot struct {
	// HeadTriples / SealedTriples / GlobalTriples split Len() by tier.
	HeadTriples   int
	SealedTriples int
	GlobalTriples int
	// Segments is the live sealed-segment count across shards.
	Segments int
	// Lifetime maintenance counters.
	Seals           int64
	SegmentsDropped int64
	TriplesDropped  int64
}

// TierStats summarises the tier layout across shards.
func (s *Sharded) TierStats() TierSnapshot {
	snap := TierSnapshot{
		Seals:           s.seals.Load(),
		SegmentsDropped: s.segsDropped.Load(),
		TriplesDropped:  s.triplesDropped.Load(),
	}
	for _, sh := range s.shards {
		sh.mu.RLock()
		snap.HeadTriples += sh.head.Len()
		snap.GlobalTriples += sh.global.Len()
		snap.Segments += len(sh.segs)
		for _, seg := range sh.segs {
			snap.SealedTriples += seg.g.Len()
		}
		sh.mu.RUnlock()
	}
	return snap
}
