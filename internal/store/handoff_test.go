package store

import (
	"bytes"
	"strings"
	"testing"

	"github.com/datacron-project/datacron/internal/onto"
	"github.com/datacron-project/datacron/internal/partition"
	"github.com/datacron-project/datacron/internal/rdf"
)

// handoffWorld builds a store holding three entities' fragments spread over
// sealed segments and the head, plus replicated global triples.
func handoffWorld(t *testing.T) *Sharded {
	t.Helper()
	s := NewSharded(partition.NewHash(4), box)
	s.AddGlobal([]onto.TripleT{{S: onto.EntityIRI("e1"), P: onto.PredType, O: onto.ClassVessel}})
	ids := []string{"e1", "e2", "e3"}
	for i := 0; i < 30; i++ {
		id := ids[i%3]
		s.AddPositionRecord(posAt(id, 23+float64(i)*0.1, 35, int64(1000+i)))
	}
	// Seal everything so far, then add a head tail.
	s.Maintain(TierPolicy{SealTriples: 1}, true)
	for i := 30; i < 45; i++ {
		id := ids[i%3]
		s.AddPositionRecord(posAt(id, 23+float64(i)*0.1, 35, int64(1000+i)))
	}
	return s
}

func censusOf(s *Sharded) map[string]int {
	c := map[string]int{}
	s.EachAnchorNode(func(iri string) {
		if e, ok := onto.AnchorEntityID(iri); ok {
			c[e]++
		}
	})
	return c
}

func TestHandoffRoundTripMovesOnlyKeptEntities(t *testing.T) {
	donor := handoffWorld(t)
	var buf bytes.Buffer
	if err := donor.WriteHandoff(&buf); err != nil {
		t.Fatalf("WriteHandoff: %v", err)
	}

	moved := func(iri string) bool {
		e, ok := onto.AnchorEntityID(iri)
		return ok && e == "e2"
	}
	frags, err := ReadHandoff(strings.NewReader(buf.String()), moved)
	if err != nil {
		t.Fatalf("ReadHandoff: %v", err)
	}
	if len(frags) != 15 {
		t.Fatalf("kept %d fragments, want 15 (e2 only)", len(frags))
	}
	for _, f := range frags {
		if len(f.Triples) == 0 {
			t.Fatalf("fragment %s has no triples", f.Node.Value)
		}
		for _, tr := range f.Triples {
			if tr.S != f.Node {
				t.Fatalf("fragment %s carries foreign triple rooted at %s", f.Node.Value, tr.S.Value)
			}
		}
	}

	target := NewSharded(partition.NewHash(4), box)
	installed, skipped := target.InstallHandoff(frags)
	if installed != 15 || skipped != 0 {
		t.Fatalf("install = (%d, %d), want (15, 0)", installed, skipped)
	}
	// Idempotent: a full re-ship installs nothing new.
	installed, skipped = target.InstallHandoff(frags)
	if installed != 0 || skipped != 15 {
		t.Fatalf("re-install = (%d, %d), want (0, 15)", installed, skipped)
	}
	if got := censusOf(target); got["e2"] != 15 || len(got) != 1 {
		t.Fatalf("target census = %v, want e2:15 only", got)
	}

	// Donor drop: e2 gone, e1/e3 untouched, and global triples survive.
	frag, tri := donor.DropAnchored(moved)
	if frag != 15 {
		t.Fatalf("dropped %d fragments, want 15", frag)
	}
	if tri == 0 {
		t.Fatalf("dropped no triples")
	}
	got := censusOf(donor)
	if got["e2"] != 0 || got["e1"] != 15 || got["e3"] != 15 {
		t.Fatalf("donor census after drop = %v", got)
	}
	found := false
	donor.View(0).Find(&[]rdf.Term{onto.EntityIRI("e1")}[0], nil, nil, func(_, _, _ rdf.Term) bool {
		found = true
		return false
	})
	if !found {
		t.Fatalf("global dimension triples lost by drop")
	}

	// Dropped fragments must be invisible to queries: no e2 semantic nodes
	// remain in any shard view.
	for i := 0; i < donor.NumShards(); i++ {
		donor.View(i).Find(nil, &onto.PredOfObject, &[]rdf.Term{onto.EntityIRI("e2")}[0], func(s, _, _ rdf.Term) bool {
			t.Fatalf("shard %d still holds e2 fragment %s", i, s.Value)
			return false
		})
	}
}

// Rebuilt segments must take fresh ids: an id names immutable contents
// (snapshot caches hard-link by id), so filtering a segment in place would
// poison every snapshot that references the old file.
func TestDropAnchoredAssignsFreshSegmentIDs(t *testing.T) {
	s := handoffWorld(t)
	before := map[string]bool{}
	for _, name := range s.SegmentFiles() {
		before[name] = true
	}
	s.DropAnchored(func(iri string) bool {
		e, ok := onto.AnchorEntityID(iri)
		return ok && e == "e1"
	})
	for _, name := range s.SegmentFiles() {
		if before[name] {
			t.Fatalf("segment %s kept its id through a rebuild", name)
		}
	}
}
