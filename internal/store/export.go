package store

import (
	"fmt"
	"io"

	"github.com/datacron-project/datacron/internal/onto"
	"github.com/datacron-project/datacron/internal/rdf"
)

// ExportNT writes the union graph of all shards as canonical N-Triples.
// Replicated global triples are emitted once. The result can be re-loaded
// with ImportNT or by any RDF tool.
func (s *Sharded) ExportNT(w io.Writer) error {
	union := rdf.NewStore(s.dict)
	for _, sh := range s.shards {
		sh.mu.RLock()
		v, _ := sh.viewLocked(ViewBounds{})
		v.FindID(rdf.Wildcard, rdf.Wildcard, rdf.Wildcard, func(t rdf.Triple) bool {
			union.AddID(t.S, t.P, t.O)
			return true
		})
		sh.mu.RUnlock()
	}
	if err := rdf.WriteNTriples(w, union); err != nil {
		return fmt.Errorf("store: export: %w", err)
	}
	return nil
}

// ImportNT bulk-loads an N-Triples dump: semantic position nodes are
// re-anchored through the partitioner (rebuilding the spatiotemporal
// index); every other triple is treated as global dimension data and
// replicated. Returns the number of positions re-anchored.
func (s *Sharded) ImportNT(r io.Reader) (positions int, err error) {
	staging := rdf.NewStore(nil)
	if _, err := rdf.ReadNTriples(r, staging); err != nil {
		return 0, fmt.Errorf("store: import: %w", err)
	}
	// Identify semantic nodes and re-anchor them.
	nodeType := onto.ClassNode
	typePred := onto.PredType
	anchored := map[rdf.Term]bool{}
	staging.Find(nil, &typePred, &nodeType, func(node, _, _ rdf.Term) bool {
		p, ok := onto.PositionFromStore(staging, node)
		if !ok {
			return true
		}
		s.AddPositionRecord(p)
		anchored[node] = true
		positions++
		return true
	})
	// Everything not belonging to an anchored node is global.
	var globals []onto.TripleT
	staging.Find(nil, nil, nil, func(sub, pred, obj rdf.Term) bool {
		if anchored[sub] {
			return true
		}
		globals = append(globals, onto.TripleT{S: sub, P: pred, O: obj})
		return true
	})
	s.AddGlobal(globals)
	return positions, nil
}
