package store

import (
	"github.com/datacron-project/datacron/internal/model"
	"github.com/datacron-project/datacron/internal/onto"
)

// AddPositionRecord transforms one position report to RDF and stores it
// anchored at its coordinates and timestamp.
func (s *Sharded) AddPositionRecord(p model.Position) {
	node := onto.NodeIRI(p.EntityID, p.TS)
	s.AddAnchored(node.Value, p.Pt, p.TS, node, onto.PositionTriples(p))
}

// AddEntity stores static entity data as global (replicated) triples, so
// per-shard joins against entity attributes stay local.
func (s *Sharded) AddEntity(e model.Entity) {
	s.AddGlobal(onto.EntityTriples(e))
}

// AddEvent stores a (detected or scripted) event anchored at its location
// and start time.
func (s *Sharded) AddEvent(ev model.Event) {
	node := onto.EventIRI(ev.Type, ev.Entity, ev.StartTS)
	s.AddAnchored(node.Value, ev.Where, ev.StartTS, node, onto.EventTriples(ev))
}

// LoadPositions bulk-loads position reports.
func (s *Sharded) LoadPositions(ps []model.Position) {
	for _, p := range ps {
		s.AddPositionRecord(p)
	}
}
