package store

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"github.com/datacron-project/datacron/internal/geo"
	"github.com/datacron-project/datacron/internal/rdf"
)

// Snapshot serialisation for the durable serving layer. Each shard is
// written as two files so recovery restores the exact partitioning without
// re-running the partitioner:
//
//	shard-NNN.nt       the shard's full RDF graph as canonical N-Triples
//	shard-NNN.anchors  the shard's spatiotemporal index, one anchor per
//	                   line: "<ts> <lon> <lat> <alt> <node IRI>"
//
// Floats use strconv 'g'/-1 formatting, which round-trips exactly. The
// N-Triples writer sorts lines, so two stores holding the same graph
// produce byte-identical shard files regardless of insertion order.

// shardFile names a per-shard snapshot file.
func shardFile(dir string, i int, ext string) string {
	return filepath.Join(dir, fmt.Sprintf("shard-%03d.%s", i, ext))
}

// WriteSnapshot serialises every shard into dir (which must exist). Each
// shard is written under its read lock; for a consistent multi-shard cut
// the caller must quiesce writers first (the core snapshot barrier does).
func (s *Sharded) WriteSnapshot(dir string) error {
	for i, sh := range s.shards {
		if err := writeShard(dir, i, sh); err != nil {
			return fmt.Errorf("store: snapshot shard %d: %w", i, err)
		}
	}
	return nil
}

func writeShard(dir string, i int, sh *Shard) error {
	sh.mu.RLock()
	defer sh.mu.RUnlock()

	ntf, err := os.Create(shardFile(dir, i, "nt"))
	if err != nil {
		return err
	}
	if err := rdf.WriteNTriples(ntf, sh.rdf); err != nil {
		ntf.Close()
		return err
	}
	if err := ntf.Close(); err != nil {
		return err
	}

	af, err := os.Create(shardFile(dir, i, "anchors"))
	if err != nil {
		return err
	}
	bw := bufio.NewWriterSize(af, 1<<16)
	g := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	for _, e := range sh.entries {
		term, ok := sh.rdf.Dict().Decode(e.node)
		if !ok {
			af.Close()
			return fmt.Errorf("anchor node id %d not in dictionary", e.node)
		}
		fmt.Fprintf(bw, "%d %s %s %s %s\n", e.ts, g(e.pt.Lon), g(e.pt.Lat), g(e.pt.Alt), term.Value)
	}
	if err := bw.Flush(); err != nil {
		af.Close()
		return err
	}
	return af.Close()
}

// LoadSnapshot restores shard contents written by WriteSnapshot into this
// store, which must have the same shard count (the core manifest checks
// that before calling). Existing shard contents are kept — loading into a
// store primed with the same global triples just deduplicates them — and
// the spatiotemporal index entries are appended in file order.
func (s *Sharded) LoadSnapshot(dir string) (triples, anchors int, err error) {
	for i, sh := range s.shards {
		t, a, err := loadShard(dir, i, sh)
		if err != nil {
			return triples, anchors, fmt.Errorf("store: load shard %d: %w", i, err)
		}
		triples += t
		anchors += a
	}
	return triples, anchors, nil
}

func loadShard(dir string, i int, sh *Shard) (triples, anchors int, err error) {
	sh.mu.Lock()
	defer sh.mu.Unlock()

	ntf, err := os.Open(shardFile(dir, i, "nt"))
	if err != nil {
		return 0, 0, err
	}
	triples, err = rdf.ReadNTriples(ntf, sh.rdf)
	ntf.Close()
	if err != nil {
		return triples, 0, err
	}

	af, err := os.Open(shardFile(dir, i, "anchors"))
	if err != nil {
		return triples, 0, err
	}
	defer af.Close()
	sc := bufio.NewScanner(af)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" {
			continue
		}
		parts := strings.SplitN(line, " ", 5)
		if len(parts) != 5 {
			return triples, anchors, fmt.Errorf("anchors line %d: malformed %q", lineNo, line)
		}
		ts, err := strconv.ParseInt(parts[0], 10, 64)
		if err != nil {
			return triples, anchors, fmt.Errorf("anchors line %d: %w", lineNo, err)
		}
		var coord [3]float64
		for j := 0; j < 3; j++ {
			if coord[j], err = strconv.ParseFloat(parts[j+1], 64); err != nil {
				return triples, anchors, fmt.Errorf("anchors line %d: %w", lineNo, err)
			}
		}
		pt := geo.Point{Lon: coord[0], Lat: coord[1], Alt: coord[2]}
		id := sh.rdf.Dict().Encode(rdf.NewIRI(parts[4]))
		entryIdx := int32(len(sh.entries))
		sh.entries = append(sh.entries, anchor{pt: pt, ts: ts, node: id})
		cell := sh.grid.CellID(pt)
		sh.cells[cell] = append(sh.cells[cell], entryIdx)
		anchors++
	}
	if err := sc.Err(); err != nil {
		return triples, anchors, fmt.Errorf("anchors: %w", err)
	}
	return triples, anchors, nil
}
