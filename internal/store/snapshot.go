package store

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"github.com/datacron-project/datacron/internal/geo"
	"github.com/datacron-project/datacron/internal/rdf"
)

// Snapshot serialisation for the durable serving layer.
//
// Flat layout (format v1, written by WriteSnapshot, always readable):
//
//	shard-NNN.nt       the shard's full RDF graph as canonical N-Triples
//	shard-NNN.anchors  the shard's spatiotemporal index, one anchor per
//	                   line: "<ts> <lon> <lat> <alt> <node IRI>"
//
// Tiered layout (format v2, written by WriteSnapshotTiered): the .nt and
// .anchors files carry only the mutable tiers (global + head), a
// shard-NNN.segments file lists the shard's sealed segments, and each
// segment is a self-describing seg-*.seg file. Segment files are immutable:
// they are written once into a shared cache directory and hard-linked into
// every snapshot that references them, so steady-state snapshots rewrite
// only the small head files. LoadSnapshot reads both layouts.
//
// Floats use strconv 'g'/-1 formatting, which round-trips exactly. The
// N-Triples writer sorts lines, so two stores holding the same graph
// produce byte-identical shard files regardless of insertion order.

// shardFile names a per-shard snapshot file.
func shardFile(dir string, i int, ext string) string {
	return filepath.Join(dir, fmt.Sprintf("shard-%03d.%s", i, ext))
}

// segFileName names a sealed segment's file.
func segFileName(id uint64) string { return fmt.Sprintf("seg-%016x.seg", id) }

// WriteSnapshot serialises every shard into dir (which must exist) in the
// flat v1 layout: all tiers merged per shard. Each shard is written under
// its read lock; for a consistent multi-shard cut the caller must quiesce
// writers first (the core snapshot barrier does).
func (s *Sharded) WriteSnapshot(dir string) error {
	for i, sh := range s.shards {
		if err := writeShardFlat(dir, i, sh); err != nil {
			return fmt.Errorf("store: snapshot shard %d: %w", i, err)
		}
	}
	return nil
}

// WriteSnapshotTiered serialises every shard into dir in the tiered v2
// layout, reusing immutable segment files through segCache (created if
// missing): a segment already in the cache is hard-linked, not rewritten.
// Returns the number of segment files referenced.
func (s *Sharded) WriteSnapshotTiered(dir, segCache string) (segments int, err error) {
	if err := os.MkdirAll(segCache, 0o755); err != nil {
		return 0, fmt.Errorf("store: snapshot: %w", err)
	}
	for i, sh := range s.shards {
		n, err := writeShardTiered(dir, segCache, i, sh)
		if err != nil {
			return segments, fmt.Errorf("store: snapshot shard %d: %w", i, err)
		}
		segments += n
	}
	return segments, nil
}

// writeShardFlat writes the union of all tiers (v1 layout).
func writeShardFlat(dir string, i int, sh *Shard) error {
	sh.mu.RLock()
	defer sh.mu.RUnlock()

	v, _ := sh.viewLocked(ViewBounds{})
	if err := writeFileNT(shardFile(dir, i, "nt"), v); err != nil {
		return err
	}
	af, err := os.Create(shardFile(dir, i, "anchors"))
	if err != nil {
		return err
	}
	bw := bufio.NewWriterSize(af, 1<<16)
	// Sealed entries oldest first, then the head: the original insertion
	// order, which is what a flat reload reproduces.
	for _, seg := range sh.segs {
		if err := writeAnchors(bw, seg.entries, sh.global.Dict()); err != nil {
			af.Close()
			return err
		}
	}
	if err := writeAnchors(bw, sh.entries, sh.global.Dict()); err != nil {
		af.Close()
		return err
	}
	if err := bw.Flush(); err != nil {
		af.Close()
		return err
	}
	return af.Close()
}

// writeShardTiered writes the mutable tiers plus a segment manifest and
// links the sealed segment files (v2 layout).
func writeShardTiered(dir, segCache string, i int, sh *Shard) (segments int, err error) {
	sh.mu.RLock()
	defer sh.mu.RUnlock()

	mutable := rdf.NewView(sh.global.Dict(), sh.global, sh.head)
	if err := writeFileNT(shardFile(dir, i, "nt"), mutable); err != nil {
		return 0, err
	}

	af, err := os.Create(shardFile(dir, i, "anchors"))
	if err != nil {
		return 0, err
	}
	bw := bufio.NewWriterSize(af, 1<<16)
	if err := writeAnchors(bw, sh.entries, sh.global.Dict()); err != nil {
		af.Close()
		return 0, err
	}
	if err := bw.Flush(); err != nil {
		af.Close()
		return 0, err
	}
	if err := af.Close(); err != nil {
		return 0, err
	}

	var names []string
	for _, seg := range sh.segs {
		name := segFileName(seg.id)
		cached := filepath.Join(segCache, name)
		if _, statErr := os.Stat(cached); statErr != nil {
			if err := writeSegmentFile(cached, seg, sh.global.Dict()); err != nil {
				return 0, err
			}
		}
		if err := linkOrCopy(cached, filepath.Join(dir, name)); err != nil {
			return 0, err
		}
		names = append(names, name)
	}
	lf, err := os.Create(shardFile(dir, i, "segments"))
	if err != nil {
		return 0, err
	}
	for _, name := range names {
		fmt.Fprintln(lf, name)
	}
	if err := lf.Close(); err != nil {
		return 0, err
	}
	return len(names), nil
}

// writeFileNT writes a graph as canonical N-Triples to path.
func writeFileNT(path string, g rdf.Graph) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := rdf.WriteNTriples(f, g); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// writeAnchors appends anchor lines to bw.
func writeAnchors(bw *bufio.Writer, entries []anchor, dict *rdf.Dictionary) error {
	g := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	for _, e := range entries {
		term, ok := dict.Decode(e.node)
		if !ok {
			return fmt.Errorf("anchor node id %d not in dictionary", e.node)
		}
		fmt.Fprintf(bw, "%d %s %s %s %s\n", e.ts, g(e.pt.Lon), g(e.pt.Lat), g(e.pt.Alt), term.Value)
	}
	return nil
}

// parseAnchorLine parses one "<ts> <lon> <lat> <alt> <node IRI>" line.
func parseAnchorLine(line string) (ts int64, pt geo.Point, iri string, err error) {
	parts := strings.SplitN(line, " ", 5)
	if len(parts) != 5 {
		return 0, geo.Point{}, "", fmt.Errorf("malformed anchor %q", line)
	}
	if ts, err = strconv.ParseInt(parts[0], 10, 64); err != nil {
		return 0, geo.Point{}, "", err
	}
	var coord [3]float64
	for j := 0; j < 3; j++ {
		if coord[j], err = strconv.ParseFloat(parts[j+1], 64); err != nil {
			return 0, geo.Point{}, "", err
		}
	}
	return ts, geo.Point{Lon: coord[0], Lat: coord[1], Alt: coord[2]}, parts[4], nil
}

// segMeta is the JSON header of a segment file.
type segMeta struct {
	ID      uint64  `json:"id"`
	Triples int     `json:"triples"`
	Anchors int     `json:"anchors"`
	MinTS   int64   `json:"minTS"`
	MaxTS   int64   `json:"maxTS"`
	MinLon  float64 `json:"minLon"`
	MinLat  float64 `json:"minLat"`
	MaxLon  float64 `json:"maxLon"`
	MaxLat  float64 `json:"maxLat"`
	// Preds is the predicate histogram keyed by predicate IRI, written for
	// offline inspection of the self-describing file only — the loader
	// recomputes live statistics from the triples themselves.
	Preds map[string]int `json:"preds,omitempty"`
}

// writeSegmentFile atomically writes one sealed segment:
//
//	DATACRON-SEG v1
//	META <json>
//	TRIPLES <n>   followed by n canonical N-Triples lines
//	ANCHORS <m>   followed by m anchor lines
func writeSegmentFile(path string, seg *segment, dict *rdf.Dictionary) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	err = func() error {
		bw := bufio.NewWriterSize(f, 1<<16)
		meta := segMeta{
			ID: seg.id, Triples: seg.g.Len(), Anchors: len(seg.entries),
			MinTS: seg.minTS, MaxTS: seg.maxTS,
			MinLon: seg.box.MinLon, MinLat: seg.box.MinLat,
			MaxLon: seg.box.MaxLon, MaxLat: seg.box.MaxLat,
			Preds: make(map[string]int),
		}
		for p, n := range seg.g.PredHistogram() {
			if term, ok := dict.Decode(p); ok {
				meta.Preds[term.Value] = n
			}
		}
		mj, err := json.Marshal(meta)
		if err != nil {
			return err
		}
		fmt.Fprintf(bw, "DATACRON-SEG v1\nMETA %s\nTRIPLES %d\n", mj, seg.g.Len())
		if err := rdf.WriteNTriples(bw, seg.g); err != nil {
			return err
		}
		fmt.Fprintf(bw, "ANCHORS %d\n", len(seg.entries))
		if err := writeAnchors(bw, seg.entries, dict); err != nil {
			return err
		}
		return bw.Flush()
	}()
	if err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// readSegmentFile parses a segment file into a live segment over dict and
// grid.
func readSegmentFile(path string, dict *rdf.Dictionary, grid geo.Grid) (*segment, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)

	expect := func(prefix string) (string, error) {
		if !sc.Scan() {
			if err := sc.Err(); err != nil {
				return "", err
			}
			return "", fmt.Errorf("truncated segment: missing %s", prefix)
		}
		line := sc.Text()
		if !strings.HasPrefix(line, prefix) {
			return "", fmt.Errorf("expected %q, got %q", prefix, line)
		}
		return strings.TrimSpace(strings.TrimPrefix(line, prefix)), nil
	}

	if _, err := expect("DATACRON-SEG v1"); err != nil {
		return nil, err
	}
	metaStr, err := expect("META ")
	if err != nil {
		return nil, err
	}
	var meta segMeta
	if err := json.Unmarshal([]byte(metaStr), &meta); err != nil {
		return nil, fmt.Errorf("segment meta: %w", err)
	}
	nStr, err := expect("TRIPLES ")
	if err != nil {
		return nil, err
	}
	nTriples, err := strconv.Atoi(nStr)
	if err != nil {
		return nil, fmt.Errorf("segment triple count: %w", err)
	}
	triples := make([]rdf.Triple, 0, nTriples)
	for k := 0; k < nTriples; k++ {
		if !sc.Scan() {
			return nil, fmt.Errorf("truncated segment: %d/%d triples", k, nTriples)
		}
		s, p, o, err := rdf.ParseTripleLine(sc.Text())
		if err != nil {
			return nil, fmt.Errorf("segment triple %d: %w", k+1, err)
		}
		triples = append(triples, rdf.Triple{S: dict.Encode(s), P: dict.Encode(p), O: dict.Encode(o)})
	}
	mStr, err := expect("ANCHORS ")
	if err != nil {
		return nil, err
	}
	nAnchors, err := strconv.Atoi(mStr)
	if err != nil {
		return nil, fmt.Errorf("segment anchor count: %w", err)
	}
	seg := &segment{
		id:    meta.ID,
		g:     rdf.NewSegment(dict, triples),
		cells: make(map[int][]int32),
	}
	for k := 0; k < nAnchors; k++ {
		if !sc.Scan() {
			return nil, fmt.Errorf("truncated segment: %d/%d anchors", k, nAnchors)
		}
		ts, pt, iri, err := parseAnchorLine(sc.Text())
		if err != nil {
			return nil, fmt.Errorf("segment anchor %d: %w", k+1, err)
		}
		id := dict.Encode(rdf.NewIRI(iri))
		seg.cells[grid.CellID(pt)] = append(seg.cells[grid.CellID(pt)], int32(len(seg.entries)))
		seg.entries = append(seg.entries, anchor{pt: pt, ts: ts, node: id})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	// Stats are recomputed from the anchors rather than trusted from META:
	// pruning and retention must match the data actually loaded.
	seg.minTS, seg.maxTS, seg.box = anchorStats(seg.entries)
	return seg, nil
}

// linkOrCopy hard-links src to dst, falling back to a byte copy on
// filesystems without hard links. An existing dst is replaced.
func linkOrCopy(src, dst string) error {
	if err := os.Remove(dst); err != nil && !os.IsNotExist(err) {
		return err
	}
	if err := os.Link(src, dst); err == nil {
		return nil
	}
	in, err := os.Open(src)
	if err != nil {
		return err
	}
	defer in.Close()
	out, err := os.Create(dst)
	if err != nil {
		return err
	}
	if _, err := io.Copy(out, in); err != nil {
		out.Close()
		return err
	}
	return out.Close()
}

// LoadSnapshot restores shard contents written by WriteSnapshot or
// WriteSnapshotTiered into this store, which must have the same shard
// count (the core manifest checks that before calling). Existing shard
// contents are kept — triples already present in a shard's global tier
// (e.g. from priming the world before recovery) are skipped rather than
// duplicated — and the spatiotemporal index entries are appended in file
// order. Sealed segments are restored as sealed segments, and the
// segment-id counter advances past every loaded id.
func (s *Sharded) LoadSnapshot(dir string) (triples, anchors int, err error) {
	for i, sh := range s.shards {
		t, a, err := s.loadShard(dir, i, sh)
		if err != nil {
			return triples, anchors, fmt.Errorf("store: load shard %d: %w", i, err)
		}
		triples += t
		anchors += a
	}
	return triples, anchors, nil
}

func (s *Sharded) loadShard(dir string, i int, sh *Shard) (triples, anchors int, err error) {
	sh.mu.Lock()
	defer sh.mu.Unlock()

	// Sealed segments first (v2 layout only).
	if lf, lerr := os.Open(shardFile(dir, i, "segments")); lerr == nil {
		sc := bufio.NewScanner(lf)
		for sc.Scan() {
			name := strings.TrimSpace(sc.Text())
			if name == "" {
				continue
			}
			seg, err := readSegmentFile(filepath.Join(dir, name), s.dict, sh.grid)
			if err != nil {
				lf.Close()
				return triples, anchors, fmt.Errorf("segment %s: %w", name, err)
			}
			sh.segs = append(sh.segs, seg)
			triples += seg.g.Len()
			anchors += len(seg.entries)
			for {
				cur := s.nextSegID.Load()
				if seg.id <= cur || s.nextSegID.CompareAndSwap(cur, seg.id) {
					break
				}
			}
			s.bumpMaxTS(seg.maxTS)
		}
		err := sc.Err()
		lf.Close()
		if err != nil {
			return triples, anchors, err
		}
	} else if !os.IsNotExist(lerr) {
		return 0, 0, lerr
	}

	// Mutable tiers: N-Triples into the head, skipping triples the global
	// tier already replicates.
	ntf, err := os.Open(shardFile(dir, i, "nt"))
	if err != nil {
		return triples, anchors, err
	}
	sc := bufio.NewScanner(ntf)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		st, pt, ot, perr := rdf.ParseTripleLine(line)
		if perr != nil {
			ntf.Close()
			return triples, anchors, fmt.Errorf("nt line %d: %w", lineNo, perr)
		}
		sid, pid, oid := s.dict.Encode(st), s.dict.Encode(pt), s.dict.Encode(ot)
		if sh.global.HasID(sid, pid, oid) {
			continue
		}
		sh.head.AddID(sid, pid, oid)
		triples++
	}
	serr := sc.Err()
	ntf.Close()
	if serr != nil {
		return triples, anchors, fmt.Errorf("nt: %w", serr)
	}

	af, err := os.Open(shardFile(dir, i, "anchors"))
	if err != nil {
		return triples, anchors, err
	}
	defer af.Close()
	asc := bufio.NewScanner(af)
	asc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	lineNo = 0
	for asc.Scan() {
		lineNo++
		line := asc.Text()
		if line == "" {
			continue
		}
		ts, pt, iri, perr := parseAnchorLine(line)
		if perr != nil {
			return triples, anchors, fmt.Errorf("anchors line %d: %w", lineNo, perr)
		}
		id := s.dict.Encode(rdf.NewIRI(iri))
		entryIdx := int32(len(sh.entries))
		sh.entries = append(sh.entries, anchor{pt: pt, ts: ts, node: id})
		sh.cells[sh.grid.CellID(pt)] = append(sh.cells[sh.grid.CellID(pt)], entryIdx)
		s.bumpMaxTS(ts)
		anchors++
	}
	if err := asc.Err(); err != nil {
		return triples, anchors, fmt.Errorf("anchors: %w", err)
	}
	return triples, anchors, nil
}

// bumpMaxTS advances the stream clock to at least ts.
func (s *Sharded) bumpMaxTS(ts int64) {
	for {
		cur := s.maxTS.Load()
		if ts <= cur || s.maxTS.CompareAndSwap(cur, ts) {
			return
		}
	}
}

// SegmentFiles returns the file names of every sealed segment currently
// live in the store (the reference set a snapshot GC keeps).
func (s *Sharded) SegmentFiles() []string {
	var out []string
	for _, sh := range s.shards {
		sh.mu.RLock()
		for _, seg := range sh.segs {
			out = append(out, segFileName(seg.id))
		}
		sh.mu.RUnlock()
	}
	return out
}
