package store

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"

	"github.com/datacron-project/datacron/internal/geo"
	"github.com/datacron-project/datacron/internal/onto"
	"github.com/datacron-project/datacron/internal/rdf"
)

// Hash-range handoff for cluster membership changes (DESIGN.md §14).
//
// A donor streams its anchored data as a sequence of DATACRON-SEG v1
// blocks — every sealed segment verbatim, plus one block per shard carrying
// the mutable head (the "head-replay tail") — over a single writer. The
// format is the sealed-segment snapshot format, so payloads are canonical
// N-Triples + anchor lines: dictionary-independent text the receiving node
// re-encodes into its own dictionary. The target filters each block by
// anchor-node predicate (only fragments whose entity moved), installs
// idempotently (a fragment already present is skipped, making retries and
// re-ships safe), and the donor afterwards drops the moved fragments by
// rebuilding the affected tiers — rebuilt segments take fresh ids, because
// segment files are immutable and snapshot caches hard-link them by id.

// HandoffFragment is one anchored graph fragment in transit between nodes:
// term-level and self-contained (every triple is rooted at Node).
type HandoffFragment struct {
	Node    rdf.Term
	Pt      geo.Point
	TS      int64
	Triples []onto.TripleT
}

// WriteHandoff streams every anchored fragment of the store to w as
// DATACRON-SEG v1 blocks: all sealed segments first, then one head block
// per non-empty shard. Global (dimension) triples are not shipped — the
// receiving node learns its own. Each shard is written under its read lock;
// for a consistent cut the caller quiesces ingest first (the cluster
// handoff path does).
func (s *Sharded) WriteHandoff(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	for i, sh := range s.shards {
		if err := s.writeShardHandoff(bw, sh); err != nil {
			return fmt.Errorf("store: handoff shard %d: %w", i, err)
		}
	}
	return bw.Flush()
}

func (s *Sharded) writeShardHandoff(bw *bufio.Writer, sh *Shard) error {
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	for _, seg := range sh.segs {
		if err := writeSegmentBlock(bw, seg.id, seg.g, seg.entries, seg.minTS, seg.maxTS, seg.box, s.dict); err != nil {
			return err
		}
	}
	if sh.head.Len() == 0 && len(sh.entries) == 0 {
		return nil
	}
	minTS, maxTS, box := anchorStats(sh.entries)
	return writeSegmentBlock(bw, 0, sh.head, sh.entries, minTS, maxTS, box, s.dict)
}

// writeSegmentBlock writes one DATACRON-SEG v1 block (the body of a sealed
// segment file, shared with writeSegmentFile) for any graph + anchor set.
func writeSegmentBlock(bw *bufio.Writer, id uint64, g rdf.Graph, entries []anchor, minTS, maxTS int64, box geo.BBox, dict *rdf.Dictionary) error {
	meta := segMeta{
		ID: id, Triples: g.Len(), Anchors: len(entries),
		MinTS: minTS, MaxTS: maxTS,
		MinLon: box.MinLon, MinLat: box.MinLat,
		MaxLon: box.MaxLon, MaxLat: box.MaxLat,
	}
	mj, err := json.Marshal(meta)
	if err != nil {
		return err
	}
	fmt.Fprintf(bw, "DATACRON-SEG v1\nMETA %s\nTRIPLES %d\n", mj, g.Len())
	if err := rdf.WriteNTriples(bw, g); err != nil {
		return err
	}
	fmt.Fprintf(bw, "ANCHORS %d\n", len(entries))
	return writeAnchors(bw, entries, dict)
}

// ReadHandoff parses a handoff block stream, keeping only the fragments
// whose anchor-node IRI passes keep. Triples not rooted at a kept anchor
// (residue, other entities' fragments) are discarded — the donor retains
// them. Returns the kept fragments; the stream ends at EOF between blocks.
func ReadHandoff(r io.Reader, keep func(nodeIRI string) bool) ([]HandoffFragment, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	var frags []HandoffFragment

	for {
		// Block header; clean EOF between blocks ends the stream.
		if !sc.Scan() {
			if err := sc.Err(); err != nil {
				return nil, err
			}
			return frags, nil
		}
		if line := sc.Text(); line != "DATACRON-SEG v1" {
			return nil, fmt.Errorf("store: handoff: expected block header, got %q", line)
		}
		expect := func(prefix string) (string, error) {
			if !sc.Scan() {
				if err := sc.Err(); err != nil {
					return "", err
				}
				return "", fmt.Errorf("store: handoff: truncated block: missing %s", prefix)
			}
			line := sc.Text()
			if !strings.HasPrefix(line, prefix) {
				return "", fmt.Errorf("store: handoff: expected %q, got %q", prefix, line)
			}
			return strings.TrimSpace(strings.TrimPrefix(line, prefix)), nil
		}
		if _, err := expect("META "); err != nil {
			return nil, err
		}
		nStr, err := expect("TRIPLES ")
		if err != nil {
			return nil, err
		}
		nTriples, err := strconv.Atoi(nStr)
		if err != nil {
			return nil, fmt.Errorf("store: handoff: triple count: %w", err)
		}
		// Group the block's triples by subject IRI; fragments are rooted at
		// their anchor node, so this is a complete reconstruction.
		bySubject := make(map[string][]onto.TripleT)
		for k := 0; k < nTriples; k++ {
			if !sc.Scan() {
				return nil, fmt.Errorf("store: handoff: truncated block: %d/%d triples", k, nTriples)
			}
			st, pt, ot, perr := rdf.ParseTripleLine(sc.Text())
			if perr != nil {
				return nil, fmt.Errorf("store: handoff: triple %d: %w", k+1, perr)
			}
			bySubject[st.Value] = append(bySubject[st.Value], onto.TripleT{S: st, P: pt, O: ot})
		}
		mStr, err := expect("ANCHORS ")
		if err != nil {
			return nil, err
		}
		nAnchors, err := strconv.Atoi(mStr)
		if err != nil {
			return nil, fmt.Errorf("store: handoff: anchor count: %w", err)
		}
		for k := 0; k < nAnchors; k++ {
			if !sc.Scan() {
				return nil, fmt.Errorf("store: handoff: truncated block: %d/%d anchors", k, nAnchors)
			}
			ts, pt, iri, perr := parseAnchorLine(sc.Text())
			if perr != nil {
				return nil, fmt.Errorf("store: handoff: anchor %d: %w", k+1, perr)
			}
			if !keep(iri) {
				continue
			}
			frags = append(frags, HandoffFragment{
				Node: rdf.NewIRI(iri), Pt: pt, TS: ts, Triples: bySubject[iri],
			})
		}
	}
}

// InstallHandoff adds staged fragments to the store, skipping any whose
// anchor node is already present in its target shard — AddAnchored appends
// anchors unconditionally, so this presence check is what makes handoff
// retries (and donor re-ships after a crash) exactly-once. Returns how many
// fragments were installed and how many skipped as duplicates.
func (s *Sharded) InstallHandoff(frags []HandoffFragment) (installed, skipped int) {
	for _, f := range frags {
		if s.hasAnchored(f) {
			skipped++
			continue
		}
		s.AddAnchored(f.Node.Value, f.Pt, f.TS, f.Node, f.Triples)
		installed++
	}
	return installed, skipped
}

// hasAnchored reports whether the fragment's anchor node already has
// triples in the shard the partitioner assigns it to. A node absent from
// the dictionary is trivially absent.
func (s *Sharded) hasAnchored(f HandoffFragment) bool {
	id, ok := s.dict.Lookup(f.Node)
	if !ok {
		return false
	}
	sh := s.shards[s.part.Assign(f.Node.Value, f.Pt, f.TS)]
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	found := false
	probe := func(t rdf.Triple) bool { found = true; return false }
	sh.head.FindID(id, rdf.Wildcard, rdf.Wildcard, probe)
	for _, seg := range sh.segs {
		if found {
			break
		}
		seg.g.FindID(id, rdf.Wildcard, rdf.Wildcard, probe)
	}
	return found
}

// DropAnchored removes every anchored fragment whose anchor-node IRI passes
// drop — the donor side of a completed handoff. Affected heads and sealed
// segments are rebuilt without the dropped fragments; rebuilt segments take
// fresh ids from the store-wide counter (segment ids name immutable
// contents — snapshot caches hard-link by id, so a filtered segment must be
// a new segment). Segments left with neither anchors nor triples disappear.
// Returns the dropped fragment and triple counts.
func (s *Sharded) DropAnchored(drop func(nodeIRI string) bool) (fragments, triples int) {
	for _, sh := range s.shards {
		f, t := s.dropShard(sh, drop)
		fragments += f
		triples += t
	}
	return fragments, triples
}

func (s *Sharded) dropShard(sh *Shard, drop func(nodeIRI string) bool) (fragments, triples int) {
	sh.mu.Lock()
	defer sh.mu.Unlock()

	dropID := func(id rdf.ID) bool {
		t, ok := s.dict.Decode(id)
		return ok && drop(t.Value)
	}

	// Head: rebuild the mutable tier without the dropped fragments. The
	// anchored set decides; residue triples (non-anchored subjects) stay.
	droppedHead := make(map[rdf.ID]bool)
	for _, e := range sh.entries {
		if dropID(e.node) {
			droppedHead[e.node] = true
		}
	}
	if len(droppedHead) > 0 {
		newHead := rdf.NewStore(s.dict)
		sh.head.FindID(rdf.Wildcard, rdf.Wildcard, rdf.Wildcard, func(t rdf.Triple) bool {
			if droppedHead[t.S] {
				triples++
			} else {
				newHead.AddID(t.S, t.P, t.O)
			}
			return true
		})
		kept := sh.entries[:0]
		cells := make(map[int][]int32)
		for _, e := range sh.entries {
			if droppedHead[e.node] {
				fragments++
				continue
			}
			cells[sh.grid.CellID(e.pt)] = append(cells[sh.grid.CellID(e.pt)], int32(len(kept)))
			kept = append(kept, e)
		}
		sh.head = newHead
		sh.entries = kept
		sh.cells = cells
	}

	// Sealed segments: untouched segments stay (same id, same file in any
	// snapshot cache); touched ones are rebuilt under a fresh id or removed.
	var segs []*segment
	for _, seg := range sh.segs {
		droppedSeg := make(map[rdf.ID]bool)
		for _, e := range seg.entries {
			if dropID(e.node) {
				droppedSeg[e.node] = true
			}
		}
		if len(droppedSeg) == 0 {
			segs = append(segs, seg)
			continue
		}
		var keptTri []rdf.Triple
		for _, t := range seg.g.Triples() {
			if droppedSeg[t.S] {
				triples++
			} else {
				keptTri = append(keptTri, t)
			}
		}
		var keptEntries []anchor
		cells := make(map[int][]int32)
		for _, e := range seg.entries {
			if droppedSeg[e.node] {
				fragments++
				continue
			}
			cells[sh.grid.CellID(e.pt)] = append(cells[sh.grid.CellID(e.pt)], int32(len(keptEntries)))
			keptEntries = append(keptEntries, e)
		}
		if len(keptTri) == 0 && len(keptEntries) == 0 {
			s.segsDropped.Add(1)
			continue
		}
		ns := &segment{
			id:      s.nextSegID.Add(1),
			g:       rdf.NewSegment(s.dict, keptTri),
			entries: keptEntries,
			cells:   cells,
		}
		ns.minTS, ns.maxTS, ns.box = anchorStats(ns.entries)
		segs = append(segs, ns)
	}
	sh.segs = segs
	return fragments, triples
}

// EachAnchorNode calls fn with the IRI of every anchored fragment across
// all shards and tiers — the ownership census the cluster layer aggregates
// per entity (tests assert zero lost / zero double-owned fragments with
// it). Order is unspecified.
func (s *Sharded) EachAnchorNode(fn func(nodeIRI string)) {
	for _, sh := range s.shards {
		sh.mu.RLock()
		emit := func(entries []anchor) {
			for _, e := range entries {
				if t, ok := s.dict.Decode(e.node); ok {
					fn(t.Value)
				}
			}
		}
		for _, seg := range sh.segs {
			emit(seg.entries)
		}
		emit(sh.entries)
		sh.mu.RUnlock()
	}
}
