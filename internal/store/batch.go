package store

import (
	"github.com/datacron-project/datacron/internal/geo"
	"github.com/datacron-project/datacron/internal/model"
	"github.com/datacron-project/datacron/internal/onto"
	"github.com/datacron-project/datacron/internal/rdf"
)

// BatchWriter stages position records per destination shard and flushes
// each shard's share under one lock acquisition — the bulk counterpart of
// AddPositionRecord. A worker that ingests a batch of N reports pays one
// shard lock, one dictionary lock (inside rdf.Store.AddBatch) and one
// sort-merge per touched shard instead of N of each.
//
// A BatchWriter is not safe for concurrent use; each ingest worker owns
// one. Flush must be called before the staged records need to be visible
// (the batched ingest path flushes before releasing its snapshot lock, so
// a snapshot cut never observes an applied LSN without its store writes).
type BatchWriter struct {
	s      *Sharded
	shards []batchShard
	// touched lists the staged shard indexes in first-touch order, so Flush
	// visits only the shards this batch wrote.
	touched []int
	maxTS   int64
	staged  int
}

// batchShard is one shard's staged share of the current batch.
type batchShard struct {
	triples []onto.TripleT
	anchors []stagedAnchor
}

// stagedAnchor is one spatiotemporal anchor awaiting registration.
type stagedAnchor struct {
	pt   geo.Point
	ts   int64
	node rdf.Term
}

// NewBatchWriter returns an empty batch writer over s.
func (s *Sharded) NewBatchWriter() *BatchWriter {
	return &BatchWriter{s: s, shards: make([]batchShard, len(s.shards))}
}

// AddPosition stages one position report: the RDF transformation runs
// immediately (into the destination shard's triple buffer), the store
// writes happen at Flush. Equivalent to AddPositionRecord after the next
// Flush.
func (bw *BatchWriter) AddPosition(p model.Position) {
	node := onto.NodeIRI(p.EntityID, p.TS)
	idx := bw.s.part.Assign(node.Value, p.Pt, p.TS)
	sh := &bw.shards[idx]
	if len(sh.anchors) == 0 && len(sh.triples) == 0 {
		bw.touched = append(bw.touched, idx)
	}
	sh.triples = onto.AppendPositionTriples(sh.triples, p)
	sh.anchors = append(sh.anchors, stagedAnchor{pt: p.Pt, ts: p.TS, node: node})
	if p.TS > bw.maxTS {
		bw.maxTS = p.TS
	}
	bw.staged++
}

// Staged returns the number of position records staged since the last
// Flush.
func (bw *BatchWriter) Staged() int { return bw.staged }

// Flush writes every staged share to its shard — triples through the bulk
// AddBatch insert, anchors into the spatiotemporal index — holding each
// touched shard's lock once, then advances the store's stream clock.
func (bw *BatchWriter) Flush() {
	if bw.staged == 0 {
		return
	}
	for _, idx := range bw.touched {
		st := &bw.shards[idx]
		sh := bw.s.shards[idx]
		sh.mu.Lock()
		sh.head.AddBatch(st.triples)
		for _, a := range st.anchors {
			id := sh.head.Dict().Encode(a.node)
			entryIdx := int32(len(sh.entries))
			sh.entries = append(sh.entries, anchor{pt: a.pt, ts: a.ts, node: id})
			cell := sh.grid.CellID(a.pt)
			sh.cells[cell] = append(sh.cells[cell], entryIdx)
		}
		sh.mu.Unlock()
		st.triples = st.triples[:0]
		st.anchors = st.anchors[:0]
	}
	bw.touched = bw.touched[:0]
	bw.staged = 0
	for {
		cur := bw.s.maxTS.Load()
		if bw.maxTS <= cur || bw.s.maxTS.CompareAndSwap(cur, bw.maxTS) {
			break
		}
	}
	bw.maxTS = 0
}
