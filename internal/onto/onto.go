// Package onto is the data-transformation layer of the datAcron
// architecture: it converts surveillance records, entities, events and
// contextual data into the common RDF representation ("convert data from
// disparate data sources ... to a common representation", §2) and back.
// The vocabulary follows the structure of the published datAcron ontology:
// moving objects have semantic trajectories made of semantic nodes, each
// with geometry, time and movement properties.
package onto

import (
	"fmt"
	"strconv"
	"strings"

	"github.com/datacron-project/datacron/internal/geo"
	"github.com/datacron-project/datacron/internal/model"
	"github.com/datacron-project/datacron/internal/rdf"
	"github.com/datacron-project/datacron/internal/synth"
)

// NS is the vocabulary namespace.
const NS = "http://www.datacron-project.eu/datAcron#"

// res is the namespace for generated resources (instances).
const res = "http://www.datacron-project.eu/resource/"

// Vocabulary class IRIs.
var (
	ClassVessel   = rdf.NewIRI(NS + "Vessel")
	ClassAircraft = rdf.NewIRI(NS + "Aircraft")
	ClassNode     = rdf.NewIRI(NS + "SemanticNode") // one position report
	ClassEvent    = rdf.NewIRI(NS + "Event")
	ClassWeather  = rdf.NewIRI(NS + "WeatherCondition")
	ClassArea     = rdf.NewIRI(NS + "Area")
)

// Vocabulary predicate IRIs.
var (
	PredType      = rdf.NewIRI(rdf.RDFType)
	PredOfObject  = rdf.NewIRI(NS + "ofMovingObject")
	PredLon       = rdf.NewIRI(NS + "longitude")
	PredLat       = rdf.NewIRI(NS + "latitude")
	PredAlt       = rdf.NewIRI(NS + "altitude")
	PredTime      = rdf.NewIRI(NS + "timestamp") // xsd:long Unix millis
	PredSpeed     = rdf.NewIRI(NS + "speed")     // m/s
	PredHeading   = rdf.NewIRI(NS + "heading")   // degrees
	PredStatus    = rdf.NewIRI(NS + "navStatus")
	PredName      = rdf.NewIRI(NS + "name")
	PredCallsign  = rdf.NewIRI(NS + "callsign")
	PredShipType  = rdf.NewIRI(NS + "vehicleType")
	PredLength    = rdf.NewIRI(NS + "length")
	PredDest      = rdf.NewIRI(NS + "destination")
	PredEventType = rdf.NewIRI(NS + "eventType")
	PredStart     = rdf.NewIRI(NS + "start") // xsd:long Unix millis
	PredEnd       = rdf.NewIRI(NS + "end")
	PredInvolves  = rdf.NewIRI(NS + "involves")
	PredInArea    = rdf.NewIRI(NS + "inArea")
	PredWind      = rdf.NewIRI(NS + "windSpeed")
	PredWindDir   = rdf.NewIRI(NS + "windDirection")
	PredWave      = rdf.NewIRI(NS + "waveHeight")
	PredNearTo    = rdf.NewIRI(NS + "hasWeatherCondition")
	PredSameAs    = rdf.NewIRI("http://www.w3.org/2002/07/owl#sameAs")
)

// EntityIRI returns the resource IRI for a moving entity id.
func EntityIRI(id string) rdf.Term { return rdf.NewIRI(res + "obj/" + id) }

// NodeIRI returns the resource IRI for one position report (semantic node).
func NodeIRI(entityID string, ts int64) rdf.Term {
	return rdf.NewIRI(res + "node/" + entityID + "/" + strconv.FormatInt(ts, 10))
}

// EventIRI returns the resource IRI for a detected or scripted event.
func EventIRI(typ, entityID string, ts int64) rdf.Term {
	return rdf.NewIRI(res + "event/" + typ + "/" + entityID + "/" + strconv.FormatInt(ts, 10))
}

// AreaIRI returns the resource IRI of a named area.
func AreaIRI(name string) rdf.Term { return rdf.NewIRI(res + "area/" + name) }

// WeatherIRI returns the resource IRI of one weather observation.
func WeatherIRI(cell int, ts int64) rdf.Term {
	return rdf.NewIRI(res + fmt.Sprintf("weather/%d/%d", cell, ts))
}

// AnchorEntityID extracts the owning entity id from the IRI of an
// entity-anchored resource — position nodes (NodeIRI) and events
// (EventIRI). ok is false for anchors that belong to no entity (weather
// observations) and for IRIs outside the resource namespace; those stay on
// whichever cluster node created them.
func AnchorEntityID(iri string) (string, bool) {
	rest, found := strings.CutPrefix(iri, res)
	if !found {
		return "", false
	}
	switch {
	case strings.HasPrefix(rest, "node/"):
		// node/<entity>/<ts>
		rest = rest[len("node/"):]
		if i := strings.IndexByte(rest, '/'); i > 0 {
			return rest[:i], true
		}
	case strings.HasPrefix(rest, "event/"):
		// event/<type>/<entity>/<ts>
		rest = rest[len("event/"):]
		if i := strings.IndexByte(rest, '/'); i >= 0 {
			rest = rest[i+1:]
			if j := strings.IndexByte(rest, '/'); j > 0 {
				return rest[:j], true
			}
		}
	}
	return "", false
}

// PositionTriples converts one position report to triples rooted at its
// semantic node.
func PositionTriples(p model.Position) []TripleT {
	node := NodeIRI(p.EntityID, p.TS)
	cls := ClassNode
	out := []TripleT{
		{node, PredType, cls},
		{node, PredOfObject, EntityIRI(p.EntityID)},
		{node, PredLon, rdf.NewDouble(p.Pt.Lon)},
		{node, PredLat, rdf.NewDouble(p.Pt.Lat)},
		{node, PredTime, rdf.NewLong(p.TS)},
		{node, PredSpeed, rdf.NewDouble(p.SpeedMS)},
		{node, PredHeading, rdf.NewDouble(p.CourseDeg)},
		{node, PredStatus, rdf.NewLiteral(p.Status.String())},
	}
	if p.Domain == model.Aviation {
		out = append(out, TripleT{node, PredAlt, rdf.NewDouble(p.Pt.Alt)})
	}
	return out
}

// EntityTriples converts static entity data to triples.
func EntityTriples(e model.Entity) []TripleT {
	obj := EntityIRI(e.ID)
	cls := ClassVessel
	if e.Domain == model.Aviation {
		cls = ClassAircraft
	}
	out := []TripleT{
		{obj, PredType, cls},
		{obj, PredName, rdf.NewLiteral(e.Name)},
	}
	if e.Callsign != "" {
		out = append(out, TripleT{obj, PredCallsign, rdf.NewLiteral(e.Callsign)})
	}
	if e.Type != "" {
		out = append(out, TripleT{obj, PredShipType, rdf.NewLiteral(e.Type)})
	}
	if e.LengthM > 0 {
		out = append(out, TripleT{obj, PredLength, rdf.NewDouble(e.LengthM)})
	}
	if e.Dest != "" {
		out = append(out, TripleT{obj, PredDest, rdf.NewLiteral(e.Dest)})
	}
	return out
}

// EventTriples converts an event to triples.
func EventTriples(ev model.Event) []TripleT {
	node := EventIRI(ev.Type, ev.Entity, ev.StartTS)
	out := []TripleT{
		{node, PredType, ClassEvent},
		{node, PredEventType, rdf.NewLiteral(ev.Type)},
		{node, PredInvolves, EntityIRI(ev.Entity)},
		{node, PredStart, rdf.NewLong(ev.StartTS)},
		{node, PredEnd, rdf.NewLong(ev.EndTS)},
	}
	if ev.Other != "" {
		out = append(out, TripleT{node, PredInvolves, EntityIRI(ev.Other)})
	}
	if ev.Area != "" {
		out = append(out, TripleT{node, PredInArea, AreaIRI(ev.Area)})
	}
	return out
}

// WeatherTriples converts one weather observation to triples.
func WeatherTriples(w synth.WeatherObs) []TripleT {
	node := WeatherIRI(w.CellID, w.TS)
	return []TripleT{
		{node, PredType, ClassWeather},
		{node, PredLon, rdf.NewDouble(w.Center.Lon)},
		{node, PredLat, rdf.NewDouble(w.Center.Lat)},
		{node, PredTime, rdf.NewLong(w.TS)},
		{node, PredWind, rdf.NewDouble(w.WindMS)},
		{node, PredWindDir, rdf.NewDouble(w.WindDirDeg)},
		{node, PredWave, rdf.NewDouble(w.WaveM)},
	}
}

// TripleT is a term-level triple, the unit the transformation layer emits.
type TripleT struct{ S, P, O rdf.Term }

// AddAll inserts term triples into a store.
func AddAll(st *rdf.Store, triples []TripleT) {
	for _, t := range triples {
		st.Add(t.S, t.P, t.O)
	}
}

// PositionFromStore reconstructs the position report rooted at the given
// semantic node, the inverse of PositionTriples. ok is false when the node
// is incomplete.
func PositionFromStore(st *rdf.Store, node rdf.Term) (model.Position, bool) {
	var p model.Position
	found := map[string]bool{}
	st.Find(&node, nil, nil, func(_, pred, obj rdf.Term) bool {
		switch pred {
		case PredOfObject:
			p.EntityID = strings.TrimPrefix(obj.Value, res+"obj/")
			found["obj"] = true
		case PredLon:
			if v, ok := obj.Float(); ok {
				p.Pt.Lon = v
				found["lon"] = true
			}
		case PredLat:
			if v, ok := obj.Float(); ok {
				p.Pt.Lat = v
				found["lat"] = true
			}
		case PredAlt:
			if v, ok := obj.Float(); ok {
				p.Pt.Alt = v
				p.Domain = model.Aviation
			}
		case PredTime:
			if v, ok := obj.Int(); ok {
				p.TS = v
				found["ts"] = true
			}
		case PredSpeed:
			if v, ok := obj.Float(); ok {
				p.SpeedMS = v
			}
		case PredHeading:
			if v, ok := obj.Float(); ok {
				p.CourseDeg = v
			}
		}
		return true
	})
	return p, found["obj"] && found["lon"] && found["lat"] && found["ts"]
}

// AreaTriples converts a named area polygon into triples carrying its
// bounding box (sufficient for coarse spatial joins in the RDF layer; exact
// geometry stays in the analytics layer).
func AreaTriples(name string, poly *geo.Polygon) []TripleT {
	node := AreaIRI(name)
	b := poly.BBox()
	return []TripleT{
		{node, PredType, ClassArea},
		{node, PredName, rdf.NewLiteral(name)},
		{node, rdf.NewIRI(NS + "minLon"), rdf.NewDouble(b.MinLon)},
		{node, rdf.NewIRI(NS + "minLat"), rdf.NewDouble(b.MinLat)},
		{node, rdf.NewIRI(NS + "maxLon"), rdf.NewDouble(b.MaxLon)},
		{node, rdf.NewIRI(NS + "maxLat"), rdf.NewDouble(b.MaxLat)},
	}
}
