// Package onto is the data-transformation layer of the datAcron
// architecture: it converts surveillance records, entities, events and
// contextual data into the common RDF representation ("convert data from
// disparate data sources ... to a common representation", §2) and back.
// The vocabulary follows the structure of the published datAcron ontology:
// moving objects have semantic trajectories made of semantic nodes, each
// with geometry, time and movement properties.
package onto

import (
	"fmt"
	"strconv"
	"strings"

	"github.com/datacron-project/datacron/internal/geo"
	"github.com/datacron-project/datacron/internal/model"
	"github.com/datacron-project/datacron/internal/rdf"
	"github.com/datacron-project/datacron/internal/synth"
)

// NS is the vocabulary namespace.
const NS = "http://www.datacron-project.eu/datAcron#"

// res is the namespace for generated resources (instances).
const res = "http://www.datacron-project.eu/resource/"

// Vocabulary class IRIs.
var (
	ClassVessel   = rdf.NewIRI(NS + "Vessel")
	ClassAircraft = rdf.NewIRI(NS + "Aircraft")
	ClassNode     = rdf.NewIRI(NS + "SemanticNode") // one position report
	ClassEvent    = rdf.NewIRI(NS + "Event")
	ClassWeather  = rdf.NewIRI(NS + "WeatherCondition")
	ClassArea     = rdf.NewIRI(NS + "Area")
)

// Vocabulary predicate IRIs.
var (
	PredType      = rdf.NewIRI(rdf.RDFType)
	PredOfObject  = rdf.NewIRI(NS + "ofMovingObject")
	PredLon       = rdf.NewIRI(NS + "longitude")
	PredLat       = rdf.NewIRI(NS + "latitude")
	PredAlt       = rdf.NewIRI(NS + "altitude")
	PredTime      = rdf.NewIRI(NS + "timestamp") // xsd:long Unix millis
	PredSpeed     = rdf.NewIRI(NS + "speed")     // m/s
	PredHeading   = rdf.NewIRI(NS + "heading")   // degrees
	PredStatus    = rdf.NewIRI(NS + "navStatus")
	PredName      = rdf.NewIRI(NS + "name")
	PredCallsign  = rdf.NewIRI(NS + "callsign")
	PredShipType  = rdf.NewIRI(NS + "vehicleType")
	PredLength    = rdf.NewIRI(NS + "length")
	PredDest      = rdf.NewIRI(NS + "destination")
	PredEventType = rdf.NewIRI(NS + "eventType")
	PredStart     = rdf.NewIRI(NS + "start") // xsd:long Unix millis
	PredEnd       = rdf.NewIRI(NS + "end")
	PredInvolves  = rdf.NewIRI(NS + "involves")
	PredInArea    = rdf.NewIRI(NS + "inArea")
	PredWind      = rdf.NewIRI(NS + "windSpeed")
	PredWindDir   = rdf.NewIRI(NS + "windDirection")
	PredWave      = rdf.NewIRI(NS + "waveHeight")
	PredNearTo    = rdf.NewIRI(NS + "hasWeatherCondition")
	PredSameAs    = rdf.NewIRI("http://www.w3.org/2002/07/owl#sameAs")
)

// EntityIRI returns the resource IRI for a moving entity id.
func EntityIRI(id string) rdf.Term { return rdf.NewIRI(res + "obj/" + id) }

// NodeIRI returns the resource IRI for one position report (semantic node).
func NodeIRI(entityID string, ts int64) rdf.Term {
	return rdf.NewIRI(res + "node/" + entityID + "/" + strconv.FormatInt(ts, 10))
}

// EventIRI returns the resource IRI for a detected or scripted event.
func EventIRI(typ, entityID string, ts int64) rdf.Term {
	return rdf.NewIRI(res + "event/" + typ + "/" + entityID + "/" + strconv.FormatInt(ts, 10))
}

// AreaIRI returns the resource IRI of a named area.
func AreaIRI(name string) rdf.Term { return rdf.NewIRI(res + "area/" + name) }

// WeatherIRI returns the resource IRI of one weather observation.
func WeatherIRI(cell int, ts int64) rdf.Term {
	return rdf.NewIRI(res + fmt.Sprintf("weather/%d/%d", cell, ts))
}

// AnchorEntityID extracts the owning entity id from the IRI of an
// entity-anchored resource — position nodes (NodeIRI) and events
// (EventIRI). ok is false for anchors that belong to no entity (weather
// observations) and for IRIs outside the resource namespace; those stay on
// whichever cluster node created them.
func AnchorEntityID(iri string) (string, bool) {
	rest, found := strings.CutPrefix(iri, res)
	if !found {
		return "", false
	}
	switch {
	case strings.HasPrefix(rest, "node/"):
		// node/<entity>/<ts>
		rest = rest[len("node/"):]
		if i := strings.IndexByte(rest, '/'); i > 0 {
			return rest[:i], true
		}
	case strings.HasPrefix(rest, "event/"):
		// event/<type>/<entity>/<ts>
		rest = rest[len("event/"):]
		if i := strings.IndexByte(rest, '/'); i >= 0 {
			rest = rest[i+1:]
			if j := strings.IndexByte(rest, '/'); j > 0 {
				return rest[:j], true
			}
		}
	}
	return "", false
}

// PositionTriples converts one position report to triples rooted at its
// semantic node.
func PositionTriples(p model.Position) []TripleT {
	return AppendPositionTriples(nil, p)
}

// AppendPositionTriples appends one position report's triples to dst — the
// allocation-free form batched ingest uses to fill per-worker triple
// buffers.
func AppendPositionTriples(dst []TripleT, p model.Position) []TripleT {
	node := NodeIRI(p.EntityID, p.TS)
	dst = append(dst,
		TripleT{S: node, P: PredType, O: ClassNode},
		TripleT{S: node, P: PredOfObject, O: EntityIRI(p.EntityID)},
		TripleT{S: node, P: PredLon, O: rdf.NewDouble(p.Pt.Lon)},
		TripleT{S: node, P: PredLat, O: rdf.NewDouble(p.Pt.Lat)},
		TripleT{S: node, P: PredTime, O: rdf.NewLong(p.TS)},
		TripleT{S: node, P: PredSpeed, O: rdf.NewDouble(p.SpeedMS)},
		TripleT{S: node, P: PredHeading, O: rdf.NewDouble(p.CourseDeg)},
		TripleT{S: node, P: PredStatus, O: rdf.NewLiteral(p.Status.String())},
	)
	if p.Domain == model.Aviation {
		dst = append(dst, TripleT{S: node, P: PredAlt, O: rdf.NewDouble(p.Pt.Alt)})
	}
	return dst
}

// EntityTriples converts static entity data to triples.
func EntityTriples(e model.Entity) []TripleT {
	obj := EntityIRI(e.ID)
	cls := ClassVessel
	if e.Domain == model.Aviation {
		cls = ClassAircraft
	}
	out := []TripleT{
		{S: obj, P: PredType, O: cls},
		{S: obj, P: PredName, O: rdf.NewLiteral(e.Name)},
	}
	if e.Callsign != "" {
		out = append(out, TripleT{S: obj, P: PredCallsign, O: rdf.NewLiteral(e.Callsign)})
	}
	if e.Type != "" {
		out = append(out, TripleT{S: obj, P: PredShipType, O: rdf.NewLiteral(e.Type)})
	}
	if e.LengthM > 0 {
		out = append(out, TripleT{S: obj, P: PredLength, O: rdf.NewDouble(e.LengthM)})
	}
	if e.Dest != "" {
		out = append(out, TripleT{S: obj, P: PredDest, O: rdf.NewLiteral(e.Dest)})
	}
	return out
}

// EventTriples converts an event to triples.
func EventTriples(ev model.Event) []TripleT {
	node := EventIRI(ev.Type, ev.Entity, ev.StartTS)
	out := []TripleT{
		{S: node, P: PredType, O: ClassEvent},
		{S: node, P: PredEventType, O: rdf.NewLiteral(ev.Type)},
		{S: node, P: PredInvolves, O: EntityIRI(ev.Entity)},
		{S: node, P: PredStart, O: rdf.NewLong(ev.StartTS)},
		{S: node, P: PredEnd, O: rdf.NewLong(ev.EndTS)},
	}
	if ev.Other != "" {
		out = append(out, TripleT{S: node, P: PredInvolves, O: EntityIRI(ev.Other)})
	}
	if ev.Area != "" {
		out = append(out, TripleT{S: node, P: PredInArea, O: AreaIRI(ev.Area)})
	}
	return out
}

// WeatherTriples converts one weather observation to triples.
func WeatherTriples(w synth.WeatherObs) []TripleT {
	node := WeatherIRI(w.CellID, w.TS)
	return []TripleT{
		{S: node, P: PredType, O: ClassWeather},
		{S: node, P: PredLon, O: rdf.NewDouble(w.Center.Lon)},
		{S: node, P: PredLat, O: rdf.NewDouble(w.Center.Lat)},
		{S: node, P: PredTime, O: rdf.NewLong(w.TS)},
		{S: node, P: PredWind, O: rdf.NewDouble(w.WindMS)},
		{S: node, P: PredWindDir, O: rdf.NewDouble(w.WindDirDeg)},
		{S: node, P: PredWave, O: rdf.NewDouble(w.WaveM)},
	}
}

// TripleT is a term-level triple, the unit the transformation layer emits.
// It is an alias of rdf.TermTriple so triple buffers can flow into
// rdf.Store.AddBatch without a copy.
type TripleT = rdf.TermTriple

// AddAll inserts term triples into a store.
func AddAll(st *rdf.Store, triples []TripleT) {
	for _, t := range triples {
		st.Add(t.S, t.P, t.O)
	}
}

// PositionFromStore reconstructs the position report rooted at the given
// semantic node, the inverse of PositionTriples. ok is false when the node
// is incomplete.
func PositionFromStore(st *rdf.Store, node rdf.Term) (model.Position, bool) {
	var p model.Position
	found := map[string]bool{}
	st.Find(&node, nil, nil, func(_, pred, obj rdf.Term) bool {
		switch pred {
		case PredOfObject:
			p.EntityID = strings.TrimPrefix(obj.Value, res+"obj/")
			found["obj"] = true
		case PredLon:
			if v, ok := obj.Float(); ok {
				p.Pt.Lon = v
				found["lon"] = true
			}
		case PredLat:
			if v, ok := obj.Float(); ok {
				p.Pt.Lat = v
				found["lat"] = true
			}
		case PredAlt:
			if v, ok := obj.Float(); ok {
				p.Pt.Alt = v
				p.Domain = model.Aviation
			}
		case PredTime:
			if v, ok := obj.Int(); ok {
				p.TS = v
				found["ts"] = true
			}
		case PredSpeed:
			if v, ok := obj.Float(); ok {
				p.SpeedMS = v
			}
		case PredHeading:
			if v, ok := obj.Float(); ok {
				p.CourseDeg = v
			}
		}
		return true
	})
	return p, found["obj"] && found["lon"] && found["lat"] && found["ts"]
}

// AreaTriples converts a named area polygon into triples carrying its
// bounding box (sufficient for coarse spatial joins in the RDF layer; exact
// geometry stays in the analytics layer).
func AreaTriples(name string, poly *geo.Polygon) []TripleT {
	node := AreaIRI(name)
	b := poly.BBox()
	return []TripleT{
		{S: node, P: PredType, O: ClassArea},
		{S: node, P: PredName, O: rdf.NewLiteral(name)},
		{S: node, P: rdf.NewIRI(NS + "minLon"), O: rdf.NewDouble(b.MinLon)},
		{S: node, P: rdf.NewIRI(NS + "minLat"), O: rdf.NewDouble(b.MinLat)},
		{S: node, P: rdf.NewIRI(NS + "maxLon"), O: rdf.NewDouble(b.MaxLon)},
		{S: node, P: rdf.NewIRI(NS + "maxLat"), O: rdf.NewDouble(b.MaxLat)},
	}
}
