package onto

import (
	"bytes"
	"testing"
	"time"

	"github.com/datacron-project/datacron/internal/geo"
	"github.com/datacron-project/datacron/internal/model"
	"github.com/datacron-project/datacron/internal/rdf"
	"github.com/datacron-project/datacron/internal/synth"
)

func samplePos() model.Position {
	return model.Position{
		EntityID: "237000001", Domain: model.Maritime, TS: 1489104000000,
		Pt: geo.Pt(23.6, 37.9), SpeedMS: 7.2, CourseDeg: 183.5, Status: model.StatusUnderway,
	}
}

func TestPositionRoundTrip(t *testing.T) {
	st := rdf.NewStore(nil)
	p := samplePos()
	AddAll(st, PositionTriples(p))
	node := NodeIRI(p.EntityID, p.TS)
	got, ok := PositionFromStore(st, node)
	if !ok {
		t.Fatal("PositionFromStore failed")
	}
	if got.EntityID != p.EntityID || got.TS != p.TS {
		t.Errorf("identity: %+v", got)
	}
	if got.Pt.Lon != p.Pt.Lon || got.Pt.Lat != p.Pt.Lat {
		t.Errorf("coords: %+v", got.Pt)
	}
	if got.SpeedMS != p.SpeedMS || got.CourseDeg != p.CourseDeg {
		t.Errorf("kinematics: %+v", got)
	}
}

func TestPositionTriplesAviationHasAltitude(t *testing.T) {
	p := samplePos()
	p.Domain = model.Aviation
	p.Pt.Alt = 10000
	triples := PositionTriples(p)
	hasAlt := false
	for _, tr := range triples {
		if tr.P == PredAlt {
			hasAlt = true
		}
	}
	if !hasAlt {
		t.Error("aviation node missing altitude")
	}
	// Round trip restores domain and altitude.
	st := rdf.NewStore(nil)
	AddAll(st, triples)
	got, ok := PositionFromStore(st, NodeIRI(p.EntityID, p.TS))
	if !ok || got.Domain != model.Aviation || got.Pt.Alt != 10000 {
		t.Errorf("round trip: %+v ok=%v", got, ok)
	}
}

func TestPositionFromStoreIncomplete(t *testing.T) {
	st := rdf.NewStore(nil)
	node := NodeIRI("x", 1)
	st.Add(node, PredLon, rdf.NewDouble(23))
	if _, ok := PositionFromStore(st, node); ok {
		t.Error("incomplete node should not reconstruct")
	}
}

func TestEntityTriples(t *testing.T) {
	e := model.Entity{
		ID: "237000001", Domain: model.Maritime, Name: "BLUE STAR", Callsign: "SV1",
		Type: "CARGO", LengthM: 120, Dest: "PIRAEUS",
	}
	st := rdf.NewStore(nil)
	AddAll(st, EntityTriples(e))
	obj := EntityIRI(e.ID)
	// Must be typed as Vessel with all attributes present.
	typeCount := 0
	st.Find(&obj, &PredType, &ClassVessel, func(_, _, _ rdf.Term) bool { typeCount++; return true })
	if typeCount != 1 {
		t.Error("missing vessel type triple")
	}
	if st.Len() != 6 {
		t.Errorf("triples = %d, want 6", st.Len())
	}
	// Aviation entity typed as Aircraft, sparse fields skipped.
	a := model.Entity{ID: "4891B6", Domain: model.Aviation, Name: "AEE101"}
	st2 := rdf.NewStore(nil)
	AddAll(st2, EntityTriples(a))
	obj2 := EntityIRI(a.ID)
	n := 0
	st2.Find(&obj2, &PredType, &ClassAircraft, func(_, _, _ rdf.Term) bool { n++; return true })
	if n != 1 {
		t.Error("missing aircraft type triple")
	}
	if st2.Len() != 2 {
		t.Errorf("sparse entity triples = %d, want 2", st2.Len())
	}
}

func TestEventTriples(t *testing.T) {
	ev := model.Event{
		Type: "rendezvous", Entity: "A", Other: "B",
		StartTS: 100, EndTS: 200, Area: "ZONE-1",
	}
	st := rdf.NewStore(nil)
	AddAll(st, EventTriples(ev))
	node := EventIRI(ev.Type, ev.Entity, ev.StartTS)
	involved := 0
	st.Find(&node, &PredInvolves, nil, func(_, _, _ rdf.Term) bool { involved++; return true })
	if involved != 2 {
		t.Errorf("involves = %d, want 2", involved)
	}
	inArea := 0
	st.Find(&node, &PredInArea, nil, func(_, _, o rdf.Term) bool {
		inArea++
		if o != AreaIRI("ZONE-1") {
			t.Errorf("area = %v", o)
		}
		return true
	})
	if inArea != 1 {
		t.Error("missing area triple")
	}
}

func TestWeatherTriples(t *testing.T) {
	obs := synth.GenWeather(geo.NewBBox(22, 34, 30, 42), 3, 3, time.Date(2017, 3, 21, 6, 0, 0, 0, time.UTC), time.Hour)
	st := rdf.NewStore(nil)
	for _, w := range obs {
		AddAll(st, WeatherTriples(w))
	}
	n := 0
	st.Find(nil, &PredType, &ClassWeather, func(_, _, _ rdf.Term) bool { n++; return true })
	if n != len(obs) {
		t.Errorf("weather nodes = %d, want %d", n, len(obs))
	}
}

func TestAreaTriples(t *testing.T) {
	poly := geo.Rect(geo.NewBBox(24, 36, 25, 37))
	st := rdf.NewStore(nil)
	AddAll(st, AreaTriples("FISHING-ZONE-1", poly))
	node := AreaIRI("FISHING-ZONE-1")
	var minLon, maxLat float64
	lonP := rdf.NewIRI(NS + "minLon")
	latP := rdf.NewIRI(NS + "maxLat")
	st.Find(&node, &lonP, nil, func(_, _, o rdf.Term) bool { minLon, _ = o.Float(); return true })
	st.Find(&node, &latP, nil, func(_, _, o rdf.Term) bool { maxLat, _ = o.Float(); return true })
	if minLon != 24 || maxLat != 37 {
		t.Errorf("bbox triples wrong: %f %f", minLon, maxLat)
	}
}

func TestIRIGenerationStable(t *testing.T) {
	if NodeIRI("a", 5) != NodeIRI("a", 5) {
		t.Error("NodeIRI not deterministic")
	}
	if NodeIRI("a", 5) == NodeIRI("a", 6) {
		t.Error("NodeIRI collision across timestamps")
	}
	if EventIRI("x", "a", 5) == EventIRI("y", "a", 5) {
		t.Error("EventIRI collision across types")
	}
}

func TestSerializationRoundTripThroughNTriples(t *testing.T) {
	// Transformation output must survive the store's N-Triples round trip.
	st := rdf.NewStore(nil)
	p := samplePos()
	AddAll(st, PositionTriples(p))
	AddAll(st, EntityTriples(model.Entity{ID: p.EntityID, Name: "X"}))
	var buf bytes.Buffer
	if err := rdf.WriteNTriples(&buf, st); err != nil {
		t.Fatal(err)
	}
	st2 := rdf.NewStore(nil)
	if _, err := rdf.ReadNTriples(&buf, st2); err != nil {
		t.Fatal(err)
	}
	got, ok := PositionFromStore(st2, NodeIRI(p.EntityID, p.TS))
	if !ok || got.Pt.Lon != p.Pt.Lon {
		t.Errorf("round trip through N-Triples: %+v ok=%v", got, ok)
	}
}
