// Package synopses implements online trajectory synopses: compressing the
// gated surveillance stream of each moving entity into the critical points
// that carry its mobility signal — stops, turns, speed changes and
// communication gaps — while everything in between (straight, steady
// movement) is dropped. This is datAcron's central volume-reduction device:
// the synopses generator cuts raw stream volume by an order of magnitude
// while the analytics and forecasting layers keep the features they need
// ("Towards Mobility Data Science" names stream summarisation as the
// prerequisite for mobility analytics at scale).
//
// The Detector is a deterministic per-entity state machine: feed it the
// entity's gated reports in stream order and it emits zero or more
// CriticalPoints per report. Determinism matters beyond reproducible
// experiments — the durability protocol replays the WAL tail through the
// same detector states, so a recovered synopsis must equal the
// uninterrupted one bit for bit.
package synopses

import (
	"time"

	"github.com/datacron-project/datacron/internal/geo"
	"github.com/datacron-project/datacron/internal/model"
)

// Kind classifies a critical point.
type Kind uint8

// Critical point kinds.
const (
	Stop        Kind = iota // sustained low speed (mooring, anchorage, holding)
	Turn                    // cumulative course change beyond the threshold
	SpeedChange             // sustained speed level shift
	GapStart                // last report before a communication gap
	GapEnd                  // first report after a communication gap
	kindCount
)

// KindCount is the number of critical point kinds (for per-kind counters).
const KindCount = int(kindCount)

// String implements fmt.Stringer; these are also the wire names in the
// /synopses endpoints and the "synopsis" SSE frames.
func (k Kind) String() string {
	switch k {
	case Stop:
		return "stop"
	case Turn:
		return "turn"
	case SpeedChange:
		return "speed-change"
	case GapStart:
		return "gap-start"
	case GapEnd:
		return "gap-end"
	default:
		return "unknown"
	}
}

// Config holds the detection thresholds. The zero value of any field falls
// back to its domain default (see DefaultMaritime / DefaultAviation), so a
// daemon flag only overrides what the operator actually set.
type Config struct {
	// StopSpeedMS is the speed under which an entity is a stop candidate;
	// a candidate sustained for StopMinDuration emits one Stop point per
	// episode. Course and speed-change detection are suspended while
	// stopped (course over ground is GPS noise at near-zero speed).
	StopSpeedMS     float64
	StopMinDuration time.Duration
	// TurnDeg emits a Turn once the cumulative course change since the
	// last turn (or reset) exceeds it. Cumulative, not per-report: a slow
	// arc crosses the threshold just like a sharp corner.
	TurnDeg float64
	// SpeedDeltaFrac emits a SpeedChange when the speed diverges from the
	// reference level by this fraction of max(reference, SpeedFloorMS);
	// the floor keeps jitter around zero from firing.
	SpeedDeltaFrac float64
	SpeedFloorMS   float64
	// GapDuration: report silence at least this long emits a GapStart
	// (annotating the last report before the silence) and a GapEnd (the
	// first report after); detection state resets across the gap.
	GapDuration time.Duration
}

// DefaultMaritime is tuned for AIS traffic (≈10 s reporting cadence).
func DefaultMaritime() Config {
	return Config{
		StopSpeedMS:     0.5, // ~1 knot
		StopMinDuration: time.Minute,
		TurnDeg:         15,
		SpeedDeltaFrac:  0.25,
		SpeedFloorMS:    1.0,
		GapDuration:     10 * time.Minute,
	}
}

// DefaultAviation is tuned for ADS-B traffic (second-level cadence, much
// higher speeds, gaps measured in minutes not tens of minutes).
func DefaultAviation() Config {
	return Config{
		StopSpeedMS:     10, // taxi threshold
		StopMinDuration: time.Minute,
		TurnDeg:         10,
		SpeedDeltaFrac:  0.15,
		SpeedFloorMS:    20,
		GapDuration:     2 * time.Minute,
	}
}

// ForDomain returns the default thresholds for a domain.
func ForDomain(d model.Domain) Config {
	if d == model.Aviation {
		return DefaultAviation()
	}
	return DefaultMaritime()
}

// WithDefaults fills zero fields from the domain defaults.
func (c Config) WithDefaults(d model.Domain) Config {
	def := ForDomain(d)
	if c.StopSpeedMS <= 0 {
		c.StopSpeedMS = def.StopSpeedMS
	}
	if c.StopMinDuration <= 0 {
		c.StopMinDuration = def.StopMinDuration
	}
	if c.TurnDeg <= 0 {
		c.TurnDeg = def.TurnDeg
	}
	if c.SpeedDeltaFrac <= 0 {
		c.SpeedDeltaFrac = def.SpeedDeltaFrac
	}
	if c.SpeedFloorMS <= 0 {
		c.SpeedFloorMS = def.SpeedFloorMS
	}
	if c.GapDuration <= 0 {
		c.GapDuration = def.GapDuration
	}
	return c
}

// CriticalPoint is one synopsis point: the report that triggered it plus
// the kind-specific annotation.
type CriticalPoint struct {
	Kind Kind           `json:"kind"`
	Pos  model.Position `json:"pos"`
	// DurationMS annotates stops (low-speed dwell when the point was
	// emitted) and gaps (silence length, on both GapStart and GapEnd).
	DurationMS int64 `json:"durationMS,omitempty"`
	// DeltaDeg annotates turns: the signed cumulative course change
	// (+ = clockwise).
	DeltaDeg float64 `json:"deltaDeg,omitempty"`
	// DeltaSpeedMS annotates speed changes: new level minus old level.
	DeltaSpeedMS float64 `json:"deltaSpeedMS,omitempty"`
}

// DetectorState is the serialisable detector state; it rides in pipeline
// snapshots so a recovered detector continues exactly where the crashed
// process stopped.
type DetectorState struct {
	Last      model.Position `json:"last"`
	HasLast   bool           `json:"hasLast"`
	CumTurn   float64        `json:"cumTurn"`
	RefSpeed  float64        `json:"refSpeed"`
	StopSince int64          `json:"stopSince"` // TS the low-speed episode began; -1 = none
	StopDone  bool           `json:"stopDone"`  // the episode's Stop point already emitted
	Raw       int64          `json:"raw"`       // reports observed
}

// Detector is the per-entity critical point state machine. Not safe for
// concurrent use; the hub serialises access per entity.
type Detector struct {
	cfg Config
	st  DetectorState
}

// NewDetector returns a detector with the given (already defaulted)
// thresholds.
func NewDetector(cfg Config) *Detector {
	return &Detector{cfg: cfg, st: DetectorState{StopSince: -1}}
}

// State exports the detector for snapshots.
func (d *Detector) State() DetectorState { return d.st }

// Restore installs a snapshot state.
func (d *Detector) Restore(st DetectorState) { d.st = st }

// Raw returns how many reports this detector has observed.
func (d *Detector) Raw() int64 { return d.st.Raw }

// Observe feeds one gated report in stream order, appending any emitted
// critical points to out (which is returned). A report never emits more
// than three points (gap-start, gap-end and one movement point).
func (d *Detector) Observe(p model.Position, out []CriticalPoint) []CriticalPoint {
	d.st.Raw++
	if !d.st.HasLast {
		d.st.HasLast = true
		d.st.RefSpeed = p.SpeedMS
		d.st.CumTurn = 0
		if p.SpeedMS < d.cfg.StopSpeedMS {
			d.st.StopSince = p.TS
		}
		d.st.Last = p
		return out
	}
	if p.TS <= d.st.Last.TS {
		// Duplicate or out-of-order timestamp: replays must see the exact
		// same decision, so skip detection entirely rather than derive a
		// zero/negative dt.
		return out
	}

	// Communication gap: bracket the silence and reset movement state —
	// whatever happened inside the gap is unobservable, so cumulative
	// course/speed baselines must not span it.
	if dt := p.TS - d.st.Last.TS; dt >= d.cfg.GapDuration.Milliseconds() {
		out = append(out,
			CriticalPoint{Kind: GapStart, Pos: d.st.Last, DurationMS: dt},
			CriticalPoint{Kind: GapEnd, Pos: p, DurationMS: dt})
		d.st.CumTurn = 0
		d.st.RefSpeed = p.SpeedMS
		d.st.StopSince = -1
		d.st.StopDone = false
		if p.SpeedMS < d.cfg.StopSpeedMS {
			d.st.StopSince = p.TS
		}
		d.st.Last = p
		return out
	}

	if p.SpeedMS < d.cfg.StopSpeedMS {
		// Low-speed episode: emit one Stop once it has been sustained.
		if d.st.StopSince < 0 {
			d.st.StopSince = p.TS
			d.st.StopDone = false
		} else if !d.st.StopDone && p.TS-d.st.StopSince >= d.cfg.StopMinDuration.Milliseconds() {
			out = append(out, CriticalPoint{Kind: Stop, Pos: p, DurationMS: p.TS - d.st.StopSince})
			d.st.StopDone = true
		}
		d.st.Last = p
		return out
	}
	if d.st.StopSince >= 0 {
		// Movement resumed: rebase course/speed on the departure report so
		// the manoeuvring into the berth does not count toward the next
		// turn, and the stop itself is not also a speed change.
		d.st.StopSince = -1
		d.st.StopDone = false
		d.st.CumTurn = 0
		d.st.RefSpeed = p.SpeedMS
		d.st.Last = p
		return out
	}

	d.st.CumTurn += geo.AngleDiff(d.st.Last.CourseDeg, p.CourseDeg)
	if d.st.CumTurn >= d.cfg.TurnDeg || d.st.CumTurn <= -d.cfg.TurnDeg {
		out = append(out, CriticalPoint{Kind: Turn, Pos: p, DeltaDeg: d.st.CumTurn})
		d.st.CumTurn = 0
	}

	ref := d.st.RefSpeed
	if ref < d.cfg.SpeedFloorMS {
		ref = d.cfg.SpeedFloorMS
	}
	if delta := p.SpeedMS - d.st.RefSpeed; delta >= d.cfg.SpeedDeltaFrac*ref || delta <= -d.cfg.SpeedDeltaFrac*ref {
		out = append(out, CriticalPoint{Kind: SpeedChange, Pos: p, DeltaSpeedMS: delta})
		d.st.RefSpeed = p.SpeedMS
	}

	d.st.Last = p
	return out
}

// Reconstruct rebuilds an approximate trajectory from a synopsis: the
// critical points in time order, deduplicated, as a model.Trajectory whose
// At() interpolation stands in for the dropped raw points. This is the
// fidelity half of the compression/quality trade-off E14 measures.
func Reconstruct(entity string, domain model.Domain, points []CriticalPoint) *model.Trajectory {
	tr := &model.Trajectory{EntityID: entity, Domain: domain}
	for _, cp := range points {
		tr.Points = append(tr.Points, cp.Pos)
	}
	tr.Sort()
	tr.Dedup()
	return tr
}
