package synopses

import (
	"testing"
	"time"

	"github.com/datacron-project/datacron/internal/geo"
	"github.com/datacron-project/datacron/internal/model"
)

// feed pushes positions through a fresh maritime-default detector and
// returns everything it emitted.
func feed(pts []model.Position) []CriticalPoint {
	d := NewDetector(DefaultMaritime())
	var out []CriticalPoint
	for _, p := range pts {
		out = d.Observe(p, out)
	}
	return out
}

// track builds a report sequence: start point, then one report per step
// applying course/speed from the callback.
func track(n int, stepS int, fn func(i int) (speedMS, courseDeg float64)) []model.Position {
	pts := make([]model.Position, 0, n)
	pt := geo.Pt(24.0, 37.5)
	for i := 0; i < n; i++ {
		speed, course := fn(i)
		pts = append(pts, model.Position{
			EntityID: "V", TS: int64(i*stepS) * 1000, Pt: pt,
			SpeedMS: speed, CourseDeg: course,
		})
		pt = geo.Destination(pt, course, speed*float64(stepS))
	}
	return pts
}

func kinds(cps []CriticalPoint) map[Kind]int {
	out := map[Kind]int{}
	for _, cp := range cps {
		out[cp.Kind]++
	}
	return out
}

// TestSteadyCruiseEmitsNothing is the compression claim in miniature: a
// straight, steady track is entirely non-critical.
func TestSteadyCruiseEmitsNothing(t *testing.T) {
	got := feed(track(360, 10, func(int) (float64, float64) { return 8, 90 }))
	if len(got) != 0 {
		t.Fatalf("steady cruise emitted %d critical points: %v", len(got), kinds(got))
	}
}

// TestStopDetection: a sustained low-speed episode emits exactly one Stop
// once StopMinDuration has elapsed; brief slowdowns emit none.
func TestStopDetection(t *testing.T) {
	// 2 minutes cruising, 5 minutes moored, 2 minutes cruising.
	pts := track(9*6, 10, func(i int) (float64, float64) {
		if i >= 12 && i < 42 {
			return 0.1, 90
		}
		return 8, 90
	})
	got := feed(pts)
	k := kinds(got)
	if k[Stop] != 1 {
		t.Fatalf("stops = %d, want exactly 1 per episode (all: %v)", k[Stop], k)
	}
	for _, cp := range got {
		if cp.Kind == Stop {
			if cp.DurationMS < DefaultMaritime().StopMinDuration.Milliseconds() {
				t.Errorf("stop emitted after only %dms dwell", cp.DurationMS)
			}
		}
	}

	// A 30-second slowdown (under StopMinDuration) is not a stop.
	brief := feed(track(30, 10, func(i int) (float64, float64) {
		if i >= 10 && i < 13 {
			return 0.1, 90
		}
		return 8, 90
	}))
	if k := kinds(brief); k[Stop] != 0 {
		t.Errorf("brief slowdown emitted %d stops", k[Stop])
	}
}

// TestTurnDetection: both a sharp corner and a slow arc crossing the
// cumulative threshold emit a Turn; sub-threshold wiggle does not.
func TestTurnDetection(t *testing.T) {
	// Sharp 90° corner.
	sharp := feed(track(20, 10, func(i int) (float64, float64) {
		if i >= 10 {
			return 8, 180
		}
		return 8, 90
	}))
	if k := kinds(sharp); k[Turn] != 1 {
		t.Errorf("sharp corner turns = %d, want 1 (%v)", k[Turn], k)
	}

	// Slow arc: 2°/report accumulates and crosses the 15° threshold every
	// 8th report (16°), so 30 reports of arc = 60° emit 3 turns.
	arc := feed(track(31, 10, func(i int) (float64, float64) {
		return 8, 90 + 2*float64(i)
	}))
	if k := kinds(arc); k[Turn] != 3 {
		t.Errorf("slow arc turns = %d, want 3 (16° accumulated per emission)", k[Turn])
	}

	// Alternating ±2° wiggle never accumulates.
	wiggle := feed(track(60, 10, func(i int) (float64, float64) {
		if i%2 == 0 {
			return 8, 90
		}
		return 8, 92
	}))
	if k := kinds(wiggle); k[Turn] != 0 {
		t.Errorf("wiggle turns = %d, want 0", k[Turn])
	}
}

// TestSpeedChangeDetection: a level shift beyond the fraction emits one
// SpeedChange and rebases the reference.
func TestSpeedChangeDetection(t *testing.T) {
	got := feed(track(40, 10, func(i int) (float64, float64) {
		if i >= 20 {
			return 12, 90 // +50% over the 8 m/s reference
		}
		return 8, 90
	}))
	k := kinds(got)
	if k[SpeedChange] != 1 {
		t.Fatalf("speed changes = %d, want 1 (%v)", k[SpeedChange], k)
	}
	for _, cp := range got {
		if cp.Kind == SpeedChange && cp.DeltaSpeedMS < 3.9 {
			t.Errorf("delta = %.2f m/s, want ≈ +4", cp.DeltaSpeedMS)
		}
	}

	// A 10% drift stays under the 25% threshold.
	drift := feed(track(40, 10, func(i int) (float64, float64) {
		if i >= 20 {
			return 8.8, 90
		}
		return 8, 90
	}))
	if k := kinds(drift); k[SpeedChange] != 0 {
		t.Errorf("drift speed changes = %d, want 0", k[SpeedChange])
	}
}

// TestGapDetection: silence beyond GapDuration emits a GapStart annotating
// the last pre-gap report and a GapEnd at the first post-gap report, and
// movement baselines reset across the gap (no turn fires from the course
// difference spanning it).
func TestGapDetection(t *testing.T) {
	pre := track(10, 10, func(int) (float64, float64) { return 8, 90 })
	post := track(10, 10, func(int) (float64, float64) { return 8, 270 })
	gapMS := (20 * time.Minute).Milliseconds()
	for i := range post {
		post[i].TS += pre[len(pre)-1].TS + gapMS
	}
	got := feed(append(pre, post...))
	k := kinds(got)
	if k[GapStart] != 1 || k[GapEnd] != 1 {
		t.Fatalf("gap points = %v, want one start + one end", k)
	}
	if k[Turn] != 0 {
		t.Errorf("turn fired across the gap: %v", k)
	}
	for _, cp := range got {
		switch cp.Kind {
		case GapStart:
			if cp.Pos.TS != pre[len(pre)-1].TS {
				t.Errorf("gap-start at TS %d, want last pre-gap report %d", cp.Pos.TS, pre[len(pre)-1].TS)
			}
			if cp.DurationMS != gapMS {
				t.Errorf("gap-start duration = %d, want %d", cp.DurationMS, gapMS)
			}
		case GapEnd:
			if cp.Pos.TS != post[0].TS {
				t.Errorf("gap-end at TS %d, want first post-gap report %d", cp.Pos.TS, post[0].TS)
			}
		}
	}
}

// TestStopSuppressesTurnAndSpeed: course/speed noise while moored must not
// emit movement points, and departure rebases cleanly.
func TestStopSuppressesTurnAndSpeed(t *testing.T) {
	pts := track(60, 10, func(i int) (float64, float64) {
		if i >= 10 && i < 50 {
			// Moored: near-zero speed, wildly swinging reported course.
			return 0.1, float64((i * 73) % 360)
		}
		return 8, 90
	})
	got := feed(pts)
	k := kinds(got)
	if k[Turn] != 0 || k[SpeedChange] != 0 {
		t.Errorf("moored noise emitted movement points: %v", k)
	}
	if k[Stop] != 1 {
		t.Errorf("stops = %d, want 1", k[Stop])
	}
}

// TestDetectorDeterministicResume: snapshotting the detector mid-stream and
// resuming on a fresh instance must emit exactly the same critical points
// as an uninterrupted run — the property the durability protocol relies on.
func TestDetectorDeterministicResume(t *testing.T) {
	pts := track(200, 10, func(i int) (float64, float64) {
		speed := 8.0
		course := 90.0
		switch {
		case i >= 30 && i < 45:
			speed = 0.2
		case i >= 60 && i < 90:
			course = 90 + 3*float64(i-60)
		case i >= 120 && i < 150:
			speed = 14
		}
		return speed, course
	})

	full := feed(pts)

	cut := 97
	d1 := NewDetector(DefaultMaritime())
	var resumed []CriticalPoint
	for _, p := range pts[:cut] {
		resumed = d1.Observe(p, resumed)
	}
	d2 := NewDetector(DefaultMaritime())
	d2.Restore(d1.State())
	for _, p := range pts[cut:] {
		resumed = d2.Observe(p, resumed)
	}

	if len(full) != len(resumed) {
		t.Fatalf("uninterrupted %d points, resumed %d", len(full), len(resumed))
	}
	for i := range full {
		if full[i] != resumed[i] {
			t.Errorf("point %d differs: %+v vs %+v", i, full[i], resumed[i])
		}
	}
	if d2.Raw() != int64(len(pts)) {
		t.Errorf("raw = %d, want %d", d2.Raw(), len(pts))
	}
}

// TestOutOfOrderAndDuplicateTimestamps: non-advancing timestamps are
// ignored for detection (replay determinism), not misinterpreted.
func TestOutOfOrderAndDuplicateTimestamps(t *testing.T) {
	pts := track(20, 10, func(int) (float64, float64) { return 8, 90 })
	withDups := make([]model.Position, 0, len(pts)*2)
	for i, p := range pts {
		withDups = append(withDups, p)
		if i%3 == 0 {
			dup := p
			dup.CourseDeg = 270 // a rebinding bug would see a huge turn
			withDups = append(withDups, dup)
		}
	}
	if got := feed(withDups); len(got) != 0 {
		t.Errorf("duplicate timestamps emitted %d points: %v", len(got), kinds(got))
	}
}

// TestReconstruct: critical points in arbitrary order rebuild a sorted,
// deduplicated trajectory.
func TestReconstruct(t *testing.T) {
	cps := []CriticalPoint{
		{Kind: Turn, Pos: model.Position{EntityID: "V", TS: 3000, Pt: geo.Pt(24.1, 37.5)}},
		{Kind: Stop, Pos: model.Position{EntityID: "V", TS: 1000, Pt: geo.Pt(24.0, 37.5)}},
		{Kind: SpeedChange, Pos: model.Position{EntityID: "V", TS: 3000, Pt: geo.Pt(24.1, 37.5)}},
	}
	tr := Reconstruct("V", model.Maritime, cps)
	if tr.Len() != 2 || tr.Points[0].TS != 1000 || tr.Points[1].TS != 3000 {
		t.Fatalf("reconstructed %d points: %+v", tr.Len(), tr.Points)
	}
}

// TestConfigDefaults: zero fields fall back per domain; explicit overrides
// survive.
func TestConfigDefaults(t *testing.T) {
	c := Config{TurnDeg: 42}.WithDefaults(model.Maritime)
	if c.TurnDeg != 42 {
		t.Errorf("override lost: TurnDeg = %v", c.TurnDeg)
	}
	if c.StopSpeedMS != DefaultMaritime().StopSpeedMS || c.GapDuration != DefaultMaritime().GapDuration {
		t.Errorf("maritime defaults not applied: %+v", c)
	}
	a := Config{}.WithDefaults(model.Aviation)
	if a != DefaultAviation() {
		t.Errorf("aviation defaults = %+v", a)
	}
	for k := Stop; k < kindCount; k++ {
		if k.String() == "unknown" {
			t.Errorf("kind %d has no name", k)
		}
	}
}
