package cluster

import (
	"testing"
	"time"

	"github.com/datacron-project/datacron/internal/core"
	"github.com/datacron-project/datacron/internal/model"
	"github.com/datacron-project/datacron/internal/server"
	"github.com/datacron-project/datacron/internal/synth"
	"github.com/datacron-project/datacron/internal/wire"
)

// TestCoordinatorReframeAllocs pins the coordinator's decode + route +
// re-frame stage at zero steady-state allocations per batch: once the
// pooled scratch's buffers have reached their high-water size, re-framing a
// per-owner batch must not touch the heap. The one allocation budgeted per
// frame is the wire decoder's private records-section copy (ResetText),
// amortised over every record in the frame.
func TestCoordinatorReframeAllocs(t *testing.T) {
	sc := synth.GenMaritime(synth.MaritimeConfig{Seed: 7, Vessels: 24, Duration: 20 * time.Minute})
	if len(sc.WireTimed) < 512 {
		t.Fatalf("scenario too small: %d lines", len(sc.WireTimed))
	}
	p := core.New(core.Config{Domain: model.Maritime})
	p.InstallAreas(sc.Areas)
	p.InstallEntities(sc.Entities)
	srv := server.New(server.Config{Pipeline: p, QueueLen: 1 << 12})
	defer srv.Close()
	n, err := New(Config{
		Self:     "n1:1",
		Members:  []string{"n1:1", "n2:1", "n3:1"},
		Server:   srv,
		Pipeline: p,
	})
	if err != nil {
		t.Fatal(err)
	}

	// One 512-line binary batch, the shape the forwarding benchmark sends.
	var enc wire.Encoder
	for _, tl := range sc.WireTimed[:512] {
		enc.Add(tl.TS, tl.Line)
	}
	body := enc.AppendFrame(nil)

	scratch := &ingestScratch{}
	reframe := func() {
		scratch.reset()
		var decodeErr string
		scratch.lines, decodeErr = decodeFrames(scratch.lines[:0], body)
		if decodeErr != "" {
			t.Fatalf("decode: %s", decodeErr)
		}
		n.stageShares(scratch)
		if scratch.n < 2 {
			t.Fatalf("expected multiple owners, got %d", scratch.n)
		}
	}
	// Warm the scratch to its high-water sizes.
	reframe()

	allocs := testing.AllocsPerRun(100, reframe)
	// Budget: exactly the per-frame ResetText records copy. Everything else
	// — line slice, per-owner encoders, frame buffers, share bookkeeping —
	// must come from the warmed scratch.
	if allocs > 1 {
		t.Fatalf("re-frame stage allocates %.1f times per batch, want <= 1 (the per-frame records copy)", allocs)
	}
}
