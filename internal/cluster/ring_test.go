package cluster

import (
	"fmt"
	"math/rand"
	"testing"
)

func ringKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		// Shaped like the real routing keys: 9-digit MMSIs.
		keys[i] = fmt.Sprintf("%09d", 100000000+i*7919)
	}
	return keys
}

func ringMembers(n int) []string {
	ms := make([]string, n)
	for i := range ms {
		ms[i] = fmt.Sprintf("127.0.0.1:%d", 9000+i)
	}
	return ms
}

// Every key maps to exactly one live member, for every membership size.
func TestRingEveryKeyHasExactlyOneOwner(t *testing.T) {
	keys := ringKeys(5000)
	for n := 1; n <= 7; n++ {
		r := NewRing(ringMembers(n), 0)
		counts := map[string]int{}
		for _, k := range keys {
			owner := r.Owner(k)
			if !r.Has(owner) {
				t.Fatalf("n=%d: key %q owned by non-member %q", n, k, owner)
			}
			counts[owner]++
			// Owner is a pure function: asking twice must agree.
			if again := r.Owner(k); again != owner {
				t.Fatalf("n=%d: key %q owner flapped %q -> %q", n, k, owner, again)
			}
		}
		if len(counts) != n {
			t.Fatalf("n=%d: only %d members own keys: %v", n, len(counts), counts)
		}
	}
}

// Ring construction is deterministic regardless of input order — the
// cross-process agreement property the forward path relies on.
func TestRingDeterministicAcrossInputOrder(t *testing.T) {
	members := ringMembers(5)
	keys := ringKeys(2000)
	ref := NewRing(members, 0)
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 10; trial++ {
		shuffled := append([]string(nil), members...)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		r := NewRing(shuffled, 0)
		if r.Fingerprint() != ref.Fingerprint() {
			t.Fatalf("fingerprint differs under input order %v", shuffled)
		}
		for _, k := range keys {
			if r.Owner(k) != ref.Owner(k) {
				t.Fatalf("owner of %q differs under input order %v", k, shuffled)
			}
		}
	}
}

// The ownership function is pinned: if the vnode hashing ever changes, every
// deployed cluster would re-route on upgrade, so a change here must be a
// deliberate migration. (Golden values computed by this implementation.)
func TestRingOwnershipGolden(t *testing.T) {
	r := NewRing([]string{"a:1", "b:1", "c:1"}, 8)
	golden := map[string]string{
		"100000000": "c:1",
		"100023757": "b:1",
		"100071271": "a:1",
	}
	for k, want := range golden {
		if got := r.Owner(k); got != want {
			t.Errorf("Owner(%q) = %q, want %q (ownership function changed!)", k, got, want)
		}
	}
}

// Join moves roughly 1/N of the keys, and only ever onto the joining node;
// leave moves exactly the departing node's keys, spread over survivors.
func TestRingJoinLeaveRemapFraction(t *testing.T) {
	keys := ringKeys(20000)
	for _, n := range []int{3, 5, 8} {
		members := ringMembers(n)
		r := NewRing(members, 0)
		joined := fmt.Sprintf("127.0.0.1:%d", 9900)
		r2 := r.WithJoined(joined)
		moved := 0
		for _, k := range keys {
			was, now := r.Owner(k), r2.Owner(k)
			if was == now {
				continue
			}
			if now != joined {
				t.Fatalf("n=%d: key %q moved %q -> %q, not onto the joiner", n, k, was, now)
			}
			moved++
		}
		ideal := float64(len(keys)) / float64(n+1)
		if f := float64(moved); f < 0.5*ideal || f > 2.0*ideal {
			t.Errorf("n=%d: join moved %d keys, want ~%.0f (0.5x-2x)", n, moved, ideal)
		}

		// Leave: the inverse — exactly the joiner's keys move back.
		r3 := r2.WithLeft(joined)
		if r3.Fingerprint() != r.Fingerprint() {
			t.Fatalf("n=%d: leave did not restore the ring", n)
		}
		for _, k := range keys {
			if r2.Owner(k) != joined && r3.Owner(k) != r2.Owner(k) {
				t.Fatalf("n=%d: leave moved key %q not owned by the leaver", n, k)
			}
		}
	}
}

// Degenerate memberships behave: empty ring owns nothing, singleton owns
// everything, duplicates collapse.
func TestRingDegenerate(t *testing.T) {
	if owner := NewRing(nil, 0).Owner("x"); owner != "" {
		t.Errorf("empty ring owner = %q", owner)
	}
	solo := NewRing([]string{"only:1"}, 0)
	for _, k := range ringKeys(100) {
		if solo.Owner(k) != "only:1" {
			t.Fatalf("singleton ring did not own %q", k)
		}
	}
	dup := NewRing([]string{"a:1", "a:1", "b:1"}, 0)
	if dup.Size() != 2 {
		t.Errorf("duplicate members not collapsed: %v", dup.Members())
	}
	if got := NewRing([]string{"a:1", "b:1"}, 0).Fingerprint(); got != dup.Fingerprint() {
		t.Errorf("fingerprint differs after duplicate collapse")
	}
}

// Load spread with default vnodes: no member owns more than ~3x its fair
// share over a large key population (a loose bound; catches gross hashing
// regressions without flaking).
func TestRingBalance(t *testing.T) {
	keys := ringKeys(30000)
	r := NewRing(ringMembers(5), 0)
	counts := map[string]int{}
	for _, k := range keys {
		counts[r.Owner(k)]++
	}
	fair := len(keys) / 5
	for m, c := range counts {
		if c > 3*fair || c < fair/3 {
			t.Errorf("member %s owns %d keys, fair share %d", m, c, fair)
		}
	}
}
