package harness

import (
	"fmt"
	"math/rand"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	"github.com/datacron-project/datacron/internal/core"
	"github.com/datacron-project/datacron/internal/model"
	"github.com/datacron-project/datacron/internal/server"
	"github.com/datacron-project/datacron/internal/synth"
)

// TestClusterGroupedOrderedDifferential drives randomly generated grouped,
// aggregated and ordered queries against a 3-node cluster and a single-node
// reference over the same stream: every query's vars+rows must match
// exactly. The generator is valid-by-construction, so any divergence is a
// distributed-finalize bug, not a fuzzing artifact. The seed is logged for
// replay.
func TestClusterGroupedOrderedDifferential(t *testing.T) {
	sc := synth.GenMaritime(synth.MaritimeConfig{
		Seed: 4242, Vessels: 8, Duration: 30 * time.Minute,
		Rendezvous: -1, Loiterers: -1,
	})
	coreCfg := core.Config{Domain: model.Maritime}
	srvCfg := server.Config{Workers: 2, QueueLen: 1 << 14}
	c := Start(t, Config{Nodes: 3, Scenario: sc, Core: coreCfg, Server: srvCfg})

	refP := core.New(coreCfg)
	refP.InstallAreas(sc.Areas)
	refP.InstallEntities(sc.Entities)
	refSrv := server.New(server.Config{Pipeline: refP, Workers: 2, QueueLen: 1 << 14})
	ref := httptest.NewServer(refSrv.Handler())
	t.Cleanup(func() { ref.Close(); refSrv.Close() })

	const batch = 1000
	for sent := 0; sent < len(sc.WireTimed); sent += batch {
		end := sent + batch
		if end > len(sc.WireTimed) {
			end = len(sc.WireTimed)
		}
		body := WireBody(sc.WireTimed[sent:end])
		if ir := c.Ingest(0, body, false); ir.Rejected != 0 {
			t.Fatalf("cluster rejected %d lines: %+v", ir.Rejected, ir)
		}
		resp, err := ref.Client().Post(ref.URL+"/ingest", "text/plain", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	c.QuiesceAll()
	if !refSrv.Ingestor().Quiesce(30 * time.Second) {
		t.Fatal("reference did not quiesce")
	}

	seed := time.Now().UnixNano()
	t.Logf("differential seed %d", seed)
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < 30; i++ {
		q := randomFinalizeQuery(rng)
		refStatus, refBody := httpPost(t, ref.URL+"/query", "text/plain", q)
		if refStatus != 200 {
			t.Fatalf("reference rejected generated query %q: %d %s", q, refStatus, refBody)
		}
		status, body := c.Query(i%3, q)
		if status != 200 {
			t.Fatalf("cluster rejected %q: %d %s", q, status, body)
		}
		var want, got queryResult
		mustDecode(t, refBody, &want)
		mustDecode(t, body, &got)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("seed %d query %q diverged:\n got %d rows: %.400s\nwant %d rows: %.400s",
				seed, q, len(got.Rows), body, len(want.Rows), refBody)
		}
	}
}

// randomFinalizeQuery builds one valid query over the position vocabulary
// (?n dat:ofMovingObject ?v, ?n dat:speed ?s), exercising grouping,
// aggregates, ordering and limits in random combinations.
func randomFinalizeQuery(rng *rand.Rand) string {
	where := " WHERE { ?n dat:ofMovingObject ?v . ?n dat:speed ?s . "
	if rng.Intn(2) == 0 {
		where += fmt.Sprintf("FILTER (?s > %d) ", rng.Intn(15))
	}
	where += "}"

	aggPool := []string{"COUNT(?n)", "SUM(?s)", "MIN(?s)", "MAX(?s)", "AVG(?s)"}
	outPool := []string{"count_n", "sum_s", "min_s", "max_s", "avg_s"}
	var sel, outCols []string

	switch rng.Intn(3) {
	case 0: // grouped aggregates
		sel = []string{"?v"}
		outCols = []string{"v"}
		for j, a := range aggPool {
			if rng.Intn(2) == 0 {
				sel = append(sel, a)
				outCols = append(outCols, outPool[j])
			}
		}
		if len(sel) == 1 { // at least one aggregate
			k := rng.Intn(len(aggPool))
			sel = append(sel, aggPool[k])
			outCols = append(outCols, outPool[k])
		}
		where += " GROUP BY ?v"
	case 1: // global aggregates, no grouping
		k := rng.Intn(len(aggPool))
		sel = []string{aggPool[k]}
		outCols = []string{outPool[k]}
	default: // plain projection
		sel = []string{"?n", "?s"}
		outCols = []string{"n", "s"}
	}

	q := "SELECT " + strings.Join(sel, " ") + where
	if rng.Intn(2) == 0 {
		key := outCols[rng.Intn(len(outCols))]
		dir := ""
		if rng.Intn(2) == 0 {
			dir = " DESC"
		}
		q += " ORDER BY ?" + key + dir
		// Secondary key keeps the order total when the primary ties; not
		// required for bit-identity (both sides stable-sort the same row
		// order) but exercises multi-key sorts.
		if other := outCols[rng.Intn(len(outCols))]; other != key {
			q += ", ?" + other
		}
	}
	if rng.Intn(2) == 0 {
		q += fmt.Sprintf(" LIMIT %d", 1+rng.Intn(9))
	}
	return q
}
