package harness

import (
	"errors"
	"net/http"
	"regexp"
	"strconv"
	"sync/atomic"
	"testing"
	"time"

	"github.com/datacron-project/datacron/internal/cluster"
	"github.com/datacron-project/datacron/internal/core"
	"github.com/datacron-project/datacron/internal/model"
	"github.com/datacron-project/datacron/internal/server"
	"github.com/datacron-project/datacron/internal/synth"
)

// membershipScenario is a moderate world for relocation tests: enough
// entities that joins and leaves move several hash arcs.
func membershipScenario() *synth.Scenario {
	return synth.GenMaritime(synth.MaritimeConfig{
		Seed: 909, Vessels: 24, Duration: 45 * time.Minute,
	})
}

func startMembershipCluster(t *testing.T, nodes int) (*Cluster, *synth.Scenario) {
	t.Helper()
	sc := membershipScenario()
	c := Start(t, Config{
		Nodes:    nodes,
		Scenario: sc,
		Core:     core.Config{Domain: model.Maritime},
		Server:   server.Config{Workers: 4, QueueLen: 1 << 16},
	})
	return c, sc
}

// seedAndSeal ingests most of the stream, force-seals every node (so a
// later handoff ships real sealed segments), then ingests the rest as a
// live head tail.
func seedAndSeal(t *testing.T, c *Cluster, sc *synth.Scenario) {
	t.Helper()
	cut := len(sc.WireTimed) * 3 / 4
	ir := c.Ingest(0, WireBody(sc.WireTimed[:cut]), true)
	if ir.Rejected != 0 {
		t.Fatalf("seed rejected %d lines: %+v", ir.Rejected, ir)
	}
	for i, n := range c.Nodes {
		if n.alive {
			if status, body := c.Post(i, "/seal", "", ""); status != http.StatusOK {
				t.Fatalf("seal node %d: %d %s", i, status, body)
			}
		}
	}
	ir = c.Ingest(0, WireBody(sc.WireTimed[cut:]), true)
	if ir.Rejected != 0 {
		t.Fatalf("tail rejected %d lines: %+v", ir.Rejected, ir)
	}
	c.QuiesceAll()
}

// unionCensus merges the live nodes' censuses, failing on any entity held
// by two nodes — the no-double-ownership half of the handoff invariant.
func unionCensus(t *testing.T, c *Cluster) map[string]int {
	t.Helper()
	union := map[string]int{}
	holder := map[string]string{}
	for i, n := range c.Nodes {
		if !n.alive {
			continue
		}
		for e, count := range c.Census(i) {
			if prev, dup := holder[e]; dup {
				t.Fatalf("entity %s double-owned by %s and %s", e, prev, n.Addr)
			}
			holder[e] = n.Addr
			union[e] = count
		}
	}
	return union
}

// assertConverged checks the full post-change invariant set: every live
// node agrees on ring version and fingerprint (via /cluster/ring AND the
// /metrics gauges), every entity is held by exactly one node, that node is
// its ring owner, and nothing was lost or duplicated against want.
func assertConverged(t *testing.T, c *Cluster, wantVersion int64, want map[string]int) {
	t.Helper()
	var members []string
	var fingerprint string
	for i, n := range c.Nodes {
		if !n.alive {
			continue
		}
		v, fp, m := c.RingInfo(i)
		if v != wantVersion {
			t.Fatalf("node %s at ring version %d, want %d", n.Addr, v, wantVersion)
		}
		if fingerprint == "" {
			fingerprint, members = fp, m
		} else if fp != fingerprint {
			t.Fatalf("node %s ring fingerprint %s, others %s", n.Addr, fp, fingerprint)
		}
		if gv := metricsGauge(t, c, i, "datacron_cluster_ring_version"); int64(gv) != wantVersion {
			t.Fatalf("node %s /metrics ring version gauge %v, want %d", n.Addr, gv, wantVersion)
		}
	}

	ring := cluster.NewRing(members, c.cfg.VNodes)
	got := map[string]int{}
	totalOwnedGauge := 0
	for i, n := range c.Nodes {
		if !n.alive {
			continue
		}
		census := c.Census(i)
		inRing := false
		for _, m := range members {
			if m == n.Addr {
				inRing = true
			}
		}
		for e, count := range census {
			if !inRing {
				t.Fatalf("departed node %s still holds entity %s", n.Addr, e)
			}
			if owner := ring.Owner(e); owner != n.Addr {
				t.Fatalf("entity %s held by %s but owned by %s", e, n.Addr, owner)
			}
			if _, dup := got[e]; dup {
				t.Fatalf("entity %s double-owned", e)
			}
			got[e] = count
		}
		totalOwnedGauge += int(metricsGauge(t, c, i, "datacron_cluster_owned_entities"))
	}
	if len(got) != len(want) {
		t.Fatalf("cluster holds %d entities, want %d", len(got), len(want))
	}
	for e, count := range want {
		if got[e] != count {
			t.Fatalf("entity %s has %d fragments, want %d (lost or duplicated triples)", e, got[e], count)
		}
	}
	if totalOwnedGauge != len(want) {
		t.Fatalf("/metrics owned-entity gauges sum to %d, want %d", totalOwnedGauge, len(want))
	}
}

// metricsGauge scrapes one unlabelled numeric sample from node i's
// /metrics.
func metricsGauge(t *testing.T, c *Cluster, i int, name string) float64 {
	t.Helper()
	status, body := c.Get(i, "/metrics")
	if status != http.StatusOK {
		t.Fatalf("metrics node %d: %d", i, status)
	}
	re := regexp.MustCompile(`(?m)^` + regexp.QuoteMeta(name) + ` (\S+)$`)
	m := re.FindSubmatch(body)
	if m == nil {
		t.Fatalf("metrics node %d missing %s", i, name)
	}
	v, err := strconv.ParseFloat(string(m[1]), 64)
	if err != nil {
		t.Fatalf("metrics node %d %s: %v", i, name, err)
	}
	return v
}

// TestClusterJoinLeaveRelocation grows a seeded 3-node cluster to 4 by
// joining a fresh node (sealed segments + head tail ship over), then
// shrinks it back by retiring a founding member — asserting after each
// change that ownership exactly matches the ring, with no entity lost,
// duplicated or left on a departed node.
func TestClusterJoinLeaveRelocation(t *testing.T) {
	c, sc := startMembershipCluster(t, 3)
	seedAndSeal(t, c, sc)
	want := unionCensus(t, c)
	if len(want) == 0 {
		t.Fatal("no anchored entities — test is vacuous")
	}

	joiner := c.AddNode()
	c.Join(0, joiner.Addr)
	assertConverged(t, c, 2, want)

	if moved := len(c.Census(joiner.idx)); moved > 0 {
		t.Logf("join moved %d entities to %s", moved, joiner.Addr)
	}

	// Retire a founding member; its whole census must redistribute.
	left := c.Nodes[1].Addr
	c.Leave(0, left)
	assertConverged(t, c, 3, want)
	if n := len(c.Census(1)); n != 0 {
		t.Fatalf("departed node %s still holds %d entities", left, n)
	}

	// The departed node also adopted the flip: its ring no longer contains
	// it, so requests it still receives forward to the real owners.
	v, _, members := c.RingInfo(1)
	if v != 3 {
		t.Fatalf("departed node at version %d, want 3", v)
	}
	for _, m := range members {
		if m == left {
			t.Fatalf("departed node still lists itself in the ring: %v", members)
		}
	}
}

// TestClusterMidHandoffDonorKill is the kill -9 handoff golden: a join is
// frozen by a donor-side failpoint at the commit step (data fully staged on
// the target, nothing committed, nothing dropped), the donor is crashed and
// restarted from its WAL, the failpoint cleared, and the join retried. The
// final state must show zero lost and zero double-owned entities and
// agreeing ownership gauges on every node.
func TestClusterMidHandoffDonorKill(t *testing.T) {
	c, sc := startMembershipCluster(t, 3)
	seedAndSeal(t, c, sc)
	want := unionCensus(t, c)
	if len(want) == 0 {
		t.Fatal("no anchored entities — test is vacuous")
	}

	var fpHits atomic.Int64
	c.Nodes[1].SetFailpoint(func(step string) error {
		if step == "commit" {
			fpHits.Add(1)
			return errors.New("injected crash before commit")
		}
		return nil
	})

	joiner := c.AddNode()
	status, body := c.TryJoin(0, joiner.Addr)
	if status == http.StatusOK {
		t.Fatalf("join succeeded through a failpointed donor: %s", body)
	}
	if fpHits.Load() == 0 {
		t.Fatal("failpoint never fired — the join failed for some other reason")
	}

	// The donor crashed mid-handoff: its shipped-but-uncommitted data is
	// stale staging on the target; the donor itself recovers everything
	// from its WAL on restart.
	c.Kill(1)
	c.Restart(1)
	c.Nodes[1].SetFailpoint(nil)

	c.Join(0, joiner.Addr)
	assertConverged(t, c, 2, want)
}

// TestClusterJoinIdempotentRetry re-joins an already-joined node: the
// orchestration reports the membership unchanged and re-shipping installs
// nothing (handoff idempotence at the API surface).
func TestClusterJoinIdempotentRetry(t *testing.T) {
	c, sc := startMembershipCluster(t, 2)
	seedAndSeal(t, c, sc)
	want := unionCensus(t, c)

	joiner := c.AddNode()
	c.Join(0, joiner.Addr)
	assertConverged(t, c, 2, want)

	status, body := c.TryJoin(0, joiner.Addr)
	if status != http.StatusOK {
		t.Fatalf("re-join: %d %s", status, body)
	}
	var cr struct {
		Version int64 `json:"version"`
		Already bool  `json:"already"`
	}
	mustDecode(t, body, &cr)
	if !cr.Already || cr.Version != 2 {
		t.Fatalf("re-join response = %s, want already at version 2", body)
	}
	assertConverged(t, c, 2, want)
}
