// Package harness is an in-process multi-node cluster fixture for
// deterministic end-to-end tests: every node is a full durable server (own
// pipeline, WAL, snapshots, temp data-dir) behind a real loopback listener,
// wrapped by the cluster coordinator layer. The fixture drives kill
// -9-equivalent crashes (listener torn down, process state abandoned,
// nothing drained), restarts on the same address and data-dir, membership
// changes, and partition-style forward failures — all under `go test
// -race`.
//
// Node identity is the fixed loopback address each node first bound: a
// restart re-listens on the same port, so the ring, the peers' forwards and
// the WAL recovery all line up exactly as they would for a daemon restarted
// on a machine.
package harness

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"github.com/datacron-project/datacron/internal/cluster"
	"github.com/datacron-project/datacron/internal/core"
	"github.com/datacron-project/datacron/internal/obs"
	"github.com/datacron-project/datacron/internal/server"
	"github.com/datacron-project/datacron/internal/synth"
	"github.com/datacron-project/datacron/internal/wal"
)

// Config parameterises a cluster fixture.
type Config struct {
	// Nodes is the initial member count.
	Nodes int
	// VNodes is the ring virtual-node count (0 = cluster.DefaultVNodes).
	VNodes int
	// Scenario, when non-nil, primes every node's world (areas + entity
	// registry), exactly like datacron-serve -prime.
	Scenario *synth.Scenario
	// Core is the per-node pipeline template (Domain, Shards, Forecast,
	// Synopses ...).
	Core core.Config
	// Server is the per-node serving template; Pipeline/WAL/DataDir/
	// Recovery/ExtraMetrics are overwritten per node.
	Server server.Config
	// Configure, when non-nil, tweaks one node's server config before it
	// starts (e.g. a tiny queue on one node for backpressure tests). It
	// runs again on restart.
	Configure func(i int, cfg *server.Config)
}

// Cluster is a running fixture.
type Cluster struct {
	t      testing.TB
	cfg    Config
	Nodes  []*Node
	client *http.Client
}

// Node is one fixture member. Addr and DataDir are stable across
// crash/restart cycles.
type Node struct {
	Addr    string
	DataDir string
	idx     int

	// members is the static -peers list the node last booted with; a
	// restart reuses it (a daemon's flags don't change when it crashes).
	members []string

	alive     bool
	pipeline  *core.Pipeline
	wlog      *wal.Log
	srv       *server.Server
	cnode     atomic.Pointer[cluster.Node]
	httpSrv   *http.Server
	failpoint atomic.Value // func(string) error

	// Abandoned kill -9 victims, closed at test cleanup only (a real
	// crashed process would have released them; here they just idle).
	abandonedSrv []*server.Server
	abandonedWAL []*wal.Log
}

// SetFailpoint installs (or, with nil, clears) the node's donor-handoff
// failpoint. Survives crash/restart cycles — it models a fault injected at
// the host, not in one process.
func (n *Node) SetFailpoint(f func(step string) error) {
	n.failpoint.Store(&f)
}

func (n *Node) runFailpoint(step string) error {
	if p, _ := n.failpoint.Load().(*func(string) error); p != nil && *p != nil {
		return (*p)(step)
	}
	return nil
}

// Pipeline exposes the node's current pipeline (nil while killed).
func (n *Node) Pipeline() *core.Pipeline { return n.pipeline }

// Start boots a cluster of cfg.Nodes members, all knowing each other from
// the start (static -peers bootstrap). Cleanup is registered on t.
func Start(t testing.TB, cfg Config) *Cluster {
	t.Helper()
	if cfg.Nodes <= 0 {
		cfg.Nodes = 3
	}
	c := &Cluster{t: t, cfg: cfg, client: &http.Client{Timeout: 30 * time.Second}}
	listeners := make([]net.Listener, cfg.Nodes)
	members := make([]string, cfg.Nodes)
	for i := range listeners {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("pre-bind node %d: %v", i, err)
		}
		listeners[i] = ln
		members[i] = ln.Addr().String()
	}
	for i := range members {
		n := &Node{Addr: members[i], DataDir: t.TempDir(), idx: i}
		c.Nodes = append(c.Nodes, n)
	}
	for i, n := range c.Nodes {
		c.boot(n, listeners[i], members)
	}
	t.Cleanup(c.shutdown)
	return c
}

// AddNode creates (but does not join) a fresh member: a running server that
// only knows itself. Call Join to move its hash ranges onto it.
func (c *Cluster) AddNode() *Node {
	c.t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		c.t.Fatalf("pre-bind new node: %v", err)
	}
	n := &Node{Addr: ln.Addr().String(), DataDir: c.t.TempDir(), idx: len(c.Nodes)}
	c.Nodes = append(c.Nodes, n)
	c.boot(n, ln, []string{n.Addr})
	return n
}

// boot assembles and starts one node on ln: primed pipeline, recovery from
// its data-dir, fresh WAL handle, durable server, cluster wrapper.
func (c *Cluster) boot(n *Node, ln net.Listener, members []string) {
	c.t.Helper()
	p := core.New(c.cfg.Core)
	if sc := c.cfg.Scenario; sc != nil {
		p.InstallAreas(sc.Areas)
		p.InstallEntities(sc.Entities)
	}
	rs, err := p.Recover(n.DataDir)
	if err != nil {
		c.t.Fatalf("node %s recover: %v", n.Addr, err)
	}
	wlog, err := wal.Open(core.WALDir(n.DataDir), wal.Options{NoSync: true})
	if err != nil {
		c.t.Fatalf("node %s wal: %v", n.Addr, err)
	}
	scfg := c.cfg.Server
	if c.cfg.Configure != nil {
		c.cfg.Configure(n.idx, &scfg)
	}
	scfg.Pipeline, scfg.WAL, scfg.DataDir, scfg.Recovery = p, wlog, n.DataDir, &rs
	scfg.ExtraMetrics = func(mw *obs.MetricsWriter) {
		if cn := n.cnode.Load(); cn != nil {
			cn.WriteMetrics(mw)
		}
	}
	srv := server.New(scfg)
	cn, err := cluster.New(cluster.Config{
		Self:      n.Addr,
		Members:   members,
		VNodes:    c.cfg.VNodes,
		Server:    srv,
		Pipeline:  p,
		Failpoint: n.runFailpoint,
		Client:    &http.Client{Timeout: 10 * time.Second},
	})
	if err != nil {
		c.t.Fatalf("node %s cluster: %v", n.Addr, err)
	}
	n.cnode.Store(cn)
	hs := &http.Server{Handler: cn}
	go func() { _ = hs.Serve(ln) }()
	n.members = members
	n.pipeline, n.wlog, n.srv, n.httpSrv, n.alive = p, wlog, srv, hs, true
}

// Kill crashes node i, kill -9 style: the listener and all connections are
// torn down immediately and every bit of process state — queued ingest
// lines, in-memory store, open WAL handle — is abandoned undrained.
// Whatever was acked is exactly what the WAL must recover.
func (c *Cluster) Kill(i int) {
	c.t.Helper()
	n := c.Nodes[i]
	if !n.alive {
		c.t.Fatalf("node %d already dead", i)
	}
	_ = n.httpSrv.Close()
	n.abandonedSrv = append(n.abandonedSrv, n.srv)
	n.abandonedWAL = append(n.abandonedWAL, n.wlog)
	n.pipeline, n.wlog, n.srv, n.httpSrv, n.alive = nil, nil, nil, nil, false
	n.cnode.Store(nil)
}

// Restart boots node i again on its original address and data-dir; recovery
// replays the WAL tail over the newest snapshot. The node rejoins with the
// same static membership it booted with.
func (c *Cluster) Restart(i int) {
	c.t.Helper()
	n := c.Nodes[i]
	if n.alive {
		c.t.Fatalf("node %d still alive", i)
	}
	var ln net.Listener
	var err error
	for attempt := 0; attempt < 50; attempt++ {
		ln, err = net.Listen("tcp", n.Addr)
		if err == nil {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err != nil {
		c.t.Fatalf("rebind %s: %v", n.Addr, err)
	}
	c.boot(n, ln, n.members)
}

func (c *Cluster) shutdown() {
	for _, n := range c.Nodes {
		if n.alive {
			_ = n.httpSrv.Close()
			n.srv.Close()
			_ = n.wlog.Close()
		}
		for _, s := range n.abandonedSrv {
			s.Close()
		}
		for _, l := range n.abandonedWAL {
			_ = l.Close()
		}
	}
}

// URL returns node i's base URL.
func (c *Cluster) URL(i int) string { return "http://" + c.Nodes[i].Addr }

// QuiesceAll blocks until every live node's ingest queues are fully
// drained — read-your-writes for the whole cluster.
func (c *Cluster) QuiesceAll() {
	c.t.Helper()
	for _, n := range c.Nodes {
		if n.alive {
			if !n.srv.Ingestor().Quiesce(30 * time.Second) {
				c.t.Fatalf("node %s did not quiesce", n.Addr)
			}
		}
	}
}

// IngestResult is the decoded coordinator ingest response.
type IngestResult struct {
	Status   int
	Accepted int                       `json:"accepted"`
	Rejected int                       `json:"rejected"`
	Error    string                    `json:"error"`
	Owners   map[string]map[string]any `json:"owners"`
}

// Ingest POSTs a text wire body to node i's coordinator endpoint.
func (c *Cluster) Ingest(i int, body string, wait bool) IngestResult {
	c.t.Helper()
	url := c.URL(i) + "/ingest"
	if wait {
		url += "?wait=1"
	}
	resp, err := c.client.Post(url, "text/plain", strings.NewReader(body))
	if err != nil {
		c.t.Fatalf("ingest via node %d: %v", i, err)
	}
	defer resp.Body.Close()
	var ir IngestResult
	if err := json.NewDecoder(resp.Body).Decode(&ir); err != nil {
		c.t.Fatalf("ingest response: %v", err)
	}
	ir.Status = resp.StatusCode
	return ir
}

// Get fetches path from node i and returns status + body.
func (c *Cluster) Get(i int, path string) (int, []byte) {
	c.t.Helper()
	resp, err := c.client.Get(c.URL(i) + path)
	if err != nil {
		c.t.Fatalf("GET %s via node %d: %v", path, i, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		c.t.Fatalf("GET %s body: %v", path, err)
	}
	return resp.StatusCode, b
}

// Post sends a body to path on node i and returns status + body.
func (c *Cluster) Post(i int, path, contentType, body string) (int, []byte) {
	c.t.Helper()
	resp, err := c.client.Post(c.URL(i)+path, contentType, strings.NewReader(body))
	if err != nil {
		c.t.Fatalf("POST %s via node %d: %v", path, i, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		c.t.Fatalf("POST %s body: %v", path, err)
	}
	return resp.StatusCode, b
}

// Query runs a query via node i's coordinator and returns the raw JSON.
func (c *Cluster) Query(i int, src string) (int, []byte) {
	c.t.Helper()
	return c.Post(i, "/query", "text/plain", src)
}

// Join moves the new member's hash ranges onto it via node i as
// coordinator and fails the test on error.
func (c *Cluster) Join(i int, addr string) {
	c.t.Helper()
	status, body := c.Post(i, "/cluster/join", "application/json",
		fmt.Sprintf(`{"node":%q}`, addr))
	if status != http.StatusOK {
		c.t.Fatalf("join %s: %d %s", addr, status, body)
	}
}

// TryJoin is Join without the fatal: it returns the raw outcome so tests
// can assert on orchestrated failures.
func (c *Cluster) TryJoin(i int, addr string) (int, []byte) {
	c.t.Helper()
	return c.Post(i, "/cluster/join", "application/json",
		fmt.Sprintf(`{"node":%q}`, addr))
}

// Leave retires addr via node i as coordinator.
func (c *Cluster) Leave(i int, addr string) {
	c.t.Helper()
	status, body := c.Post(i, "/cluster/leave", "application/json",
		fmt.Sprintf(`{"node":%q}`, addr))
	if status != http.StatusOK {
		c.t.Fatalf("leave %s: %d %s", addr, status, body)
	}
}

// Census fetches node i's anchored-entity census.
func (c *Cluster) Census(i int) map[string]int {
	c.t.Helper()
	status, body := c.Get(i, "/cluster/census")
	if status != http.StatusOK {
		c.t.Fatalf("census node %d: %d %s", i, status, body)
	}
	var cr struct {
		Entities map[string]int `json:"entities"`
	}
	if err := json.Unmarshal(body, &cr); err != nil {
		c.t.Fatalf("census decode: %v", err)
	}
	return cr.Entities
}

// RingInfo fetches node i's membership view.
func (c *Cluster) RingInfo(i int) (version int64, fingerprint string, members []string) {
	c.t.Helper()
	status, body := c.Get(i, "/cluster/ring")
	if status != http.StatusOK {
		c.t.Fatalf("ring node %d: %d %s", i, status, body)
	}
	var rr struct {
		Version     int64    `json:"version"`
		Fingerprint string   `json:"fingerprint"`
		Members     []string `json:"members"`
	}
	if err := json.Unmarshal(body, &rr); err != nil {
		c.t.Fatalf("ring decode: %v", err)
	}
	return rr.Version, rr.Fingerprint, rr.Members
}

// WireBody renders timed lines in the datacron-gen wire file format.
func WireBody(lines []synth.TimedLine) string {
	var b bytes.Buffer
	for _, tl := range lines {
		fmt.Fprintf(&b, "%d %s\n", tl.TS, tl.Line)
	}
	return b.String()
}
