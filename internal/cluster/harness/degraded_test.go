package harness

import (
	"bytes"
	"net"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/datacron-project/datacron/internal/cluster"
	"github.com/datacron-project/datacron/internal/core"
	"github.com/datacron-project/datacron/internal/model"
	"github.com/datacron-project/datacron/internal/server"
	"github.com/datacron-project/datacron/internal/synth"
)

func degradedScenario() *synth.Scenario {
	return synth.GenMaritime(synth.MaritimeConfig{
		Seed: 4242, Vessels: 10, Duration: 30 * time.Minute,
	})
}

// splitByOwner partitions timed lines by owning node under coordinator
// coord's current ring. Lines with no routing key (global facts) belong to
// the coordinator itself.
func splitByOwner(t *testing.T, c *Cluster, coord int, lines []synth.TimedLine) map[string][]synth.TimedLine {
	t.Helper()
	_, _, members := c.RingInfo(coord)
	ring := cluster.NewRing(members, c.cfg.VNodes)
	shares := map[string][]synth.TimedLine{}
	for _, tl := range lines {
		key := c.Nodes[coord].Pipeline().RoutingKey(tl.Line)
		owner := c.Nodes[coord].Addr
		if key != "" {
			owner = ring.Owner(key)
		}
		shares[owner] = append(shares[owner], tl)
	}
	return shares
}

func ownerStat(t *testing.T, ir IngestResult, addr, field string) int {
	t.Helper()
	oi, ok := ir.Owners[addr]
	if !ok {
		t.Fatalf("ingest response has no owner entry for %s: %+v", addr, ir)
	}
	v, _ := oi[field].(float64)
	return int(v)
}

// TestClusterForwardBackpressure pins the backpressure-propagation
// regression: when the owning node sheds load, the coordinator answers 429
// with Retry-After and a per-owner breakdown — the shed lines are reported
// rejected, never silently dropped — and the per-owner accepted prefix is a
// valid resume point that loses nothing.
func TestClusterForwardBackpressure(t *testing.T) {
	sc := degradedScenario()
	c := Start(t, Config{
		Nodes:    2,
		Scenario: sc,
		Core:     core.Config{Domain: model.Maritime},
		Server:   server.Config{Workers: 4, QueueLen: 1 << 16},
		Configure: func(i int, cfg *server.Config) {
			if i == 1 {
				// One worker, one queue slot: with that worker paused, the
				// second owned line must shed.
				cfg.Workers = 1
				cfg.QueueLen = 1
			}
		},
	})

	batch := sc.WireTimed[:200]
	shares := splitByOwner(t, c, 0, batch)
	addr1 := c.Nodes[1].Addr
	if len(shares[addr1]) < 4 {
		t.Fatalf("only %d lines route to node 1 — scenario too small for a meaningful test", len(shares[addr1]))
	}

	// Pause node 1's worker at a line boundary so its single queue slot
	// fills and stays full for the whole batch.
	release := c.Nodes[1].srv.Ingestor().Barrier()
	var once sync.Once
	unpause := func() { once.Do(release) }
	defer unpause()

	resp, err := httpClient.Post(c.URL(0)+"/ingest", "text/plain", strings.NewReader(WireBody(batch)))
	if err != nil {
		t.Fatal(err)
	}
	var ir IngestResult
	mustDecodeReader(t, resp, &ir)
	if ir.Status != http.StatusTooManyRequests {
		t.Fatalf("coordinator status = %d, want 429: %+v", ir.Status, ir)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	if ir.Accepted+ir.Rejected != len(batch) {
		t.Fatalf("accepted %d + rejected %d != %d lines: nothing may go missing from the account",
			ir.Accepted, ir.Rejected, len(batch))
	}
	if ir.Rejected == 0 {
		t.Fatalf("saturated owner produced no rejection report: %+v", ir)
	}
	k := ownerStat(t, ir, addr1, "accepted")
	if rej := ownerStat(t, ir, addr1, "rejected"); k+rej != len(shares[addr1]) {
		t.Fatalf("owner breakdown %d+%d != share %d", k, rej, len(shares[addr1]))
	}
	if got := ownerStat(t, ir, c.Nodes[0].Addr, "rejected"); got != 0 {
		t.Fatalf("coordinator's own share shed %d lines with an oversized queue", got)
	}

	// Resume from the per-owner prefix: re-send only node 1's unaccepted
	// tail, line by line with wait (the queue holds a single line).
	unpause()
	for _, tl := range shares[addr1][k:] {
		rir := c.Ingest(0, WireBody([]synth.TimedLine{tl}), true)
		if rir.Status != http.StatusAccepted || rir.Rejected != 0 {
			t.Fatalf("resume line rejected: %+v", rir)
		}
	}
	c.QuiesceAll()

	// Completeness: the cluster now holds exactly what a single node fed
	// the original batch holds.
	ref := newReferenceServer(t, sc, core.Config{Domain: model.Maritime})
	refIngest(t, ref, WireBody(batch))
	for _, q := range []string{
		`SELECT COUNT WHERE { ?n rdf:type dat:SemanticNode . }`,
		`SELECT ?n WHERE { ?n dat:speed ?s . FILTER (?s > 10) }`,
	} {
		compareQuery(t, c, 0, ref, q, false)
	}
}

// TestClusterForwardPartition pins the partition-style forward failure: an
// unreachable owner's whole share is reported rejected (429 at the
// coordinator), the live owners' shares land normally, and re-sending the
// rejected share after the owner returns completes the stream with nothing
// lost and nothing duplicated.
func TestClusterForwardPartition(t *testing.T) {
	sc := degradedScenario()
	c := Start(t, Config{
		Nodes:    3,
		Scenario: sc,
		Core:     core.Config{Domain: model.Maritime},
		Server:   server.Config{Workers: 4, QueueLen: 1 << 16},
	})

	batch := sc.WireTimed[:900]
	shares := splitByOwner(t, c, 0, batch)
	addr2 := c.Nodes[2].Addr
	if len(shares[addr2]) == 0 {
		t.Fatal("no lines route to node 2 — test is vacuous")
	}

	c.Kill(2)
	ir := c.Ingest(0, WireBody(batch), false)
	if ir.Status != http.StatusTooManyRequests {
		t.Fatalf("coordinator status = %d, want 429 while an owner is down", ir.Status)
	}
	if ir.Rejected != len(shares[addr2]) {
		t.Fatalf("rejected %d, want exactly the dead owner's share %d", ir.Rejected, len(shares[addr2]))
	}
	if ir.Accepted != len(batch)-len(shares[addr2]) {
		t.Fatalf("accepted %d, want the live owners' %d", ir.Accepted, len(batch)-len(shares[addr2]))
	}
	oi := ir.Owners[addr2]
	if errText, _ := oi["error"].(string); !strings.Contains(errText, "forward") {
		t.Fatalf("dead owner's share not marked as a forward failure: %v", oi)
	}

	c.Restart(2)
	rir := c.Ingest(0, WireBody(shares[addr2]), true)
	if rir.Status != http.StatusAccepted || rir.Rejected != 0 {
		t.Fatalf("re-send of the partitioned share: %+v", rir)
	}
	c.QuiesceAll()

	ref := newReferenceServer(t, sc, core.Config{Domain: model.Maritime})
	refIngest(t, ref, WireBody(batch))
	for _, q := range []string{
		`SELECT COUNT WHERE { ?n rdf:type dat:SemanticNode . }`,
		`SELECT COUNT ?v WHERE { ?v rdf:type dat:Vessel . }`,
	} {
		compareQuery(t, c, 0, ref, q, false)
	}
}

// TestClusterDegradedPartialReads pins the degraded read contract with a
// node down: scatter-gather endpoints still answer 200 but carry
// partial:true, an empty merged row set encodes as [] (never null), a
// single-entity proxy to the dead owner is 502 while live owners serve, and
// recovery clears the partial flag.
func TestClusterDegradedPartialReads(t *testing.T) {
	sc := degradedScenario()
	c := Start(t, Config{Nodes: 3, Scenario: sc, Core: goldenCore(),
		Server: server.Config{Workers: 4, QueueLen: 1 << 16}})

	ir := c.Ingest(0, WireBody(sc.WireTimed), true)
	if ir.Rejected != 0 {
		t.Fatalf("seed rejected: %+v", ir)
	}
	c.QuiesceAll()

	// Pick one forecastable entity owned by node 1 (the crash victim) and
	// one owned elsewhere, using the ring exactly as the proxy does.
	status, body := c.Get(0, "/forecast/batch?horizon=5m")
	if status != http.StatusOK {
		t.Fatalf("forecast/batch healthy: %d %s", status, body)
	}
	var fb struct {
		Forecasts []struct {
			Entity string `json:"entity"`
		} `json:"forecasts"`
	}
	mustDecode(t, body, &fb)
	_, _, members := c.RingInfo(0)
	ring := cluster.NewRing(members, c.cfg.VNodes)
	var deadOwned, liveOwned string
	for _, f := range fb.Forecasts {
		if ring.Owner(f.Entity) == c.Nodes[1].Addr {
			deadOwned = f.Entity
		} else {
			liveOwned = f.Entity
		}
	}
	if deadOwned == "" || liveOwned == "" {
		t.Fatalf("entity spread too narrow: deadOwned=%q liveOwned=%q over %d forecasts",
			deadOwned, liveOwned, len(fb.Forecasts))
	}

	c.Kill(1)

	status, body = c.Query(0, `SELECT ?v WHERE { ?v rdf:type dat:Vessel . }`)
	if status != http.StatusOK || !bytes.Contains(body, []byte(`"partial":true`)) {
		t.Fatalf("query with a node down: %d %s — want 200 with partial:true", status, body)
	}

	// An empty merged result is [] — a degraded coordinator must keep the
	// single-node JSON shape.
	status, body = c.Query(0, `SELECT ?n WHERE { ?n dat:speed ?s . FILTER (?s > 100000) }`)
	if status != http.StatusOK || !bytes.Contains(body, []byte(`"rows":[]`)) {
		t.Fatalf("empty degraded query: %d %s — want 200 with rows:[]", status, body)
	}

	for _, path := range []string{"/forecast/batch?horizon=5m", "/synopses/batch"} {
		status, body = c.Get(0, path)
		if status != http.StatusOK || !bytes.Contains(body, []byte(`"partial":true`)) {
			t.Fatalf("%s with a node down: %d %.300s — want 200 with partial:true", path, status, body)
		}
	}

	if status, _ = c.Get(0, "/forecast?entity="+deadOwned+"&horizon=5m"); status != http.StatusBadGateway {
		t.Fatalf("proxy to dead owner = %d, want 502", status)
	}
	if status, body = c.Get(0, "/forecast?entity="+liveOwned+"&horizon=5m"); status != http.StatusOK {
		t.Fatalf("proxy to live owner = %d %s, want 200", status, body)
	}
	if status, _ = c.Get(0, "/synopses/"+deadOwned); status != http.StatusBadGateway {
		t.Fatalf("synopsis proxy to dead owner = %d, want 502", status)
	}

	c.Restart(1)
	c.QuiesceAll()
	status, body = c.Query(0, `SELECT ?v WHERE { ?v rdf:type dat:Vessel . }`)
	if status != http.StatusOK || bytes.Contains(body, []byte(`"partial"`)) {
		t.Fatalf("query after recovery: %d %s — partial flag must clear", status, body)
	}
	for _, path := range []string{"/forecast/batch?horizon=5m", "/synopses/batch"} {
		status, body = c.Get(0, path)
		if status != http.StatusOK || bytes.Contains(body, []byte(`"partial"`)) {
			t.Fatalf("%s after recovery: %d %.300s — partial flag must clear", path, status, body)
		}
	}
	if status, _ = c.Get(0, "/forecast?entity="+deadOwned+"&horizon=5m"); status != http.StatusOK {
		t.Fatalf("proxy to recovered owner = %d, want 200", status)
	}
}

// TestClusterCountLimitCrossNode extends the engine's COUNT/LIMIT tables
// across nodes: every combination — COUNT of replicated and anchored data,
// COUNT independent of LIMIT, LIMIT above and below the result size, empty
// and zero-count results — must decode identically through every
// coordinator and a single node over the same stream.
func TestClusterCountLimitCrossNode(t *testing.T) {
	sc := degradedScenario()
	c := Start(t, Config{Nodes: 2, Scenario: sc,
		Core:   core.Config{Domain: model.Maritime},
		Server: server.Config{Workers: 4, QueueLen: 1 << 16}})

	body := WireBody(sc.WireTimed)
	if ir := c.Ingest(0, body, true); ir.Rejected != 0 {
		t.Fatalf("seed rejected: %+v", ir)
	}
	c.QuiesceAll()
	ref := newReferenceServer(t, sc, core.Config{Domain: model.Maritime})
	refIngest(t, ref, body)

	queries := []string{
		// The engine's own COUNT table, cross-node.
		`SELECT COUNT ?v WHERE { ?v rdf:type dat:Vessel . }`,
		`SELECT COUNT WHERE { ?n rdf:type dat:SemanticNode . }`,
		`SELECT COUNT ?n WHERE { ?n dat:speed ?s . FILTER (?s > 10) }`,
		`SELECT COUNT ?n WHERE { ?n rdf:type dat:SemanticNode . } LIMIT 4`,
		`SELECT COUNT ?n WHERE { ?n rdf:type dat:SemanticNode . } LIMIT 400000`,
		// Zero-count and empty results.
		`SELECT COUNT ?n WHERE { ?n dat:speed ?s . FILTER (?s > 100000) }`,
		`SELECT ?n WHERE { ?n dat:speed ?s . FILTER (?s > 100000) }`,
		// LIMIT truncating the globally merged (not per-node) row set.
		`SELECT ?n WHERE { ?n rdf:type dat:SemanticNode . } LIMIT 1`,
		`SELECT ?n ?s WHERE { ?n dat:speed ?s . FILTER (?s > 10) } LIMIT 7`,
		`SELECT COUNT ?n ?s WHERE { ?n dat:speed ?s . FILTER (?s > 10) } LIMIT 7`,
	}
	for _, q := range queries {
		for coord := range c.Nodes {
			compareQuery(t, c, coord, ref, q, false)
		}
	}
}

// referenceServer is a plain single-node server fed the same stream — the
// semantic ground truth every cluster read is compared against.
type referenceServer struct {
	url string
	srv *server.Server
}

func newReferenceServer(t *testing.T, sc *synth.Scenario, cfg core.Config) *referenceServer {
	t.Helper()
	p := core.New(cfg)
	p.InstallAreas(sc.Areas)
	p.InstallEntities(sc.Entities)
	srv := server.New(server.Config{Pipeline: p, Workers: 4, QueueLen: 1 << 16})
	hs := &http.Server{Handler: srv.Handler()}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = hs.Serve(ln) }()
	t.Cleanup(func() { _ = hs.Close(); srv.Close() })
	return &referenceServer{url: "http://" + ln.Addr().String(), srv: srv}
}

func refIngest(t *testing.T, ref *referenceServer, body string) {
	t.Helper()
	status, respBody := httpPost(t, ref.url+"/ingest?wait=1", "text/plain", body)
	if status != http.StatusAccepted {
		t.Fatalf("reference ingest: %d %s", status, respBody)
	}
	if !ref.srv.Ingestor().Quiesce(30 * time.Second) {
		t.Fatal("reference did not quiesce")
	}
}

// compareQuery asserts a cluster query through coordinator coord decodes to
// the same vars+rows as the reference; wantPartial additionally pins the
// degraded flag.
func compareQuery(t *testing.T, c *Cluster, coord int, ref *referenceServer, q string, wantPartial bool) {
	t.Helper()
	refStatus, refBody := httpPost(t, ref.url+"/query", "text/plain", q)
	if refStatus != http.StatusOK {
		t.Fatalf("reference query %q: %d %s", q, refStatus, refBody)
	}
	status, body := c.Query(coord, q)
	if status != http.StatusOK {
		t.Fatalf("cluster query %q via node %d: %d %s", q, coord, status, body)
	}
	if got := bytes.Contains(body, []byte(`"partial":true`)); got != wantPartial {
		t.Fatalf("query %q partial=%v, want %v: %s", q, got, wantPartial, body)
	}
	var want, got queryResult
	mustDecode(t, refBody, &want)
	mustDecode(t, body, &got)
	if len(want.Rows) == 0 && len(got.Rows) == 0 {
		return
	}
	if !equalRows(want.Rows, got.Rows) || strings.Join(want.Vars, ",") != strings.Join(got.Vars, ",") {
		t.Fatalf("query %q via node %d diverged:\n got %s\nwant %s", q, coord, body, refBody)
	}
}

func equalRows(a, b [][]string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if strings.Join(a[i], "\x00") != strings.Join(b[i], "\x00") {
			return false
		}
	}
	return true
}

func mustDecodeReader(t *testing.T, resp *http.Response, ir *IngestResult) {
	t.Helper()
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	mustDecode(t, buf.Bytes(), ir)
	ir.Status = resp.StatusCode
}
