package harness

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	"github.com/datacron-project/datacron/internal/core"
	"github.com/datacron-project/datacron/internal/model"
	"github.com/datacron-project/datacron/internal/server"
	"github.com/datacron-project/datacron/internal/synth"
)

// goldenScenario is a world whose cluster-observable outputs are provably
// partition-independent, so a scatter-gather cluster must match a single
// node bit for bit:
//
//   - Rendezvous: -1 and Loiterers: -1 disable the scripted cross-entity
//     and loitering traffic, so complex-event state never couples two
//     entities that could land on different nodes, and no entity
//     accumulates the sustained slow run that would move the Markov event
//     probability off its exact-0 regime (guarded below).
//   - ~15 vessels × 2h at 10s reporting ≈ 10.8k wire lines (≥ the 10k the
//     acceptance criterion demands).
func goldenScenario() *synth.Scenario {
	return synth.GenMaritime(synth.MaritimeConfig{
		Seed: 777, Vessels: 15, Duration: 2 * time.Hour,
		Rendezvous: -1, Loiterers: -1, GapProb: 0.0005, OutlierProb: 0.002,
	})
}

// goldenCore pins the forecast subsystem to its partition-independent
// regime: RouteMinHistory/KNNMinHistory above HistoryLen keep the fallback
// ladder on the per-entity dead-reckoning/kinematic rungs (the shared
// route/KNN models are node-local and would diverge), and a MaxStale far
// beyond the scenario duration makes every reporting entity "live" on its
// owner regardless of node-local clocks.
func goldenCore() core.Config {
	return core.Config{
		Domain: model.Maritime,
		Forecast: core.ForecastConfig{
			Enabled:    true,
			HistoryLen: 32, RouteMinHistory: 33, KNNMinHistory: 33,
			MaxStale: 24 * time.Hour,
		},
		Synopses: core.SynopsesConfig{
			Enabled:  true,
			MaxStale: 24 * time.Hour,
		},
	}
}

// queryResult is the vars+rows projection of a query response — the part
// that must be identical between cluster and single node (elapsed time and
// plan counters legitimately differ).
type queryResult struct {
	Vars []string   `json:"vars"`
	Rows [][]string `json:"rows"`
}

// goldenQueries exercises global triples (replicated, must deduplicate),
// anchored per-entity data (disjoint, must union), FILTER pushdown, COUNT
// (must count the global distinct set once) and LIMIT (must truncate the
// globally sorted set).
var goldenQueries = []string{
	`SELECT ?v WHERE { ?v rdf:type dat:Vessel . }`,
	`SELECT ?n WHERE { ?n dat:speed ?s . FILTER (?s > 12) }`,
	`SELECT COUNT WHERE { ?n rdf:type dat:SemanticNode . }`,
	`SELECT COUNT ?n WHERE { ?n dat:speed ?s . FILTER (?s > 12) } LIMIT 4`,
	`SELECT ?n WHERE { ?n rdf:type dat:SemanticNode . } LIMIT 57`,
	// Grouped / ordered aggregates: the coordinator must fold the merged
	// distinct rows exactly like a single node — including float SUM/AVG
	// bits, pinned by the canonical fold order on both sides.
	`SELECT ?v COUNT(?n) WHERE { ?n dat:ofMovingObject ?v . } GROUP BY ?v`,
	`SELECT ?v SUM(?s) AVG(?s) WHERE { ?n dat:ofMovingObject ?v . ?n dat:speed ?s . } GROUP BY ?v ORDER BY ?sum_s DESC, ?v LIMIT 5`,
	`SELECT COUNT(?n) MIN(?s) MAX(?s) AVG(?s) WHERE { ?n dat:speed ?s . }`,
	`SELECT ?n ?s WHERE { ?n dat:speed ?s . FILTER (?s > 12) } ORDER BY ?s DESC, ?n LIMIT 10`,
}

// TestClusterGoldenBitIdentity is the tentpole acceptance test: a 3-node
// cluster ingests a ≥10k-line stream through one coordinator, one node is
// crashed kill -9 style mid-stream (acked lines still queued) and
// restarted on its WAL, and at the end every scatter-gather read — /query
// vars+rows, /forecast/batch and /synopses/batch byte for byte — matches a
// single-node server fed the identical stream.
func TestClusterGoldenBitIdentity(t *testing.T) {
	sc := goldenScenario()
	if len(sc.WireTimed) < 10_000 {
		t.Fatalf("scenario has %d lines, want >= 10000", len(sc.WireTimed))
	}

	srvCfg := server.Config{Workers: 4, QueueLen: 1 << 16}
	c := Start(t, Config{Nodes: 3, Scenario: sc, Core: goldenCore(), Server: srvCfg})

	// Single-node reference over the same stream (plain server, no cluster
	// wrapper — the comparison target the paper architecture defines).
	refP := core.New(goldenCore())
	refP.InstallAreas(sc.Areas)
	refP.InstallEntities(sc.Entities)
	refSrv := server.New(server.Config{Pipeline: refP, Workers: 4, QueueLen: 1 << 16})
	ref := httptest.NewServer(refSrv.Handler())
	t.Cleanup(func() { ref.Close(); refSrv.Close() })

	const batch = 1000
	killAfterBatch := 5
	for i, sent := 0, 0; sent < len(sc.WireTimed); i++ {
		end := sent + batch
		if end > len(sc.WireTimed) {
			end = len(sc.WireTimed)
		}
		body := WireBody(sc.WireTimed[sent:end])
		ir := c.Ingest(0, body, false)
		if ir.Rejected != 0 {
			t.Fatalf("batch %d: cluster rejected %d lines with oversized queues: %+v", i, ir.Rejected, ir)
		}
		resp, err := ref.Client().Post(ref.URL+"/ingest", "text/plain", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		sent = end

		if i == killAfterBatch {
			// Kill -9 node 1 with acked lines potentially still queued,
			// then restart it on the same address + data-dir: recovery
			// replays the WAL tail and the stream continues.
			c.Kill(1)
			c.Restart(1)
		}
	}
	c.QuiesceAll()
	if !refSrv.Ingestor().Quiesce(30 * time.Second) {
		t.Fatal("reference did not quiesce")
	}

	// /query: vars+rows identical through any coordinator.
	for _, q := range goldenQueries {
		refStatus, refBody := httpPost(t, ref.URL+"/query", "text/plain", q)
		if refStatus != 200 {
			t.Fatalf("reference query %q: %d %s", q, refStatus, refBody)
		}
		var want queryResult
		mustDecode(t, refBody, &want)
		for _, coord := range []int{0, 2} {
			status, body := c.Query(coord, q)
			if status != 200 {
				t.Fatalf("cluster query %q via node %d: %d %s", q, coord, status, body)
			}
			if bytes.Contains(body, []byte(`"partial":true`)) {
				t.Fatalf("cluster query %q degraded with all nodes up: %s", q, body)
			}
			var got queryResult
			mustDecode(t, body, &got)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("query %q via node %d diverged from single node:\n got %d rows: %.300s\nwant %d rows: %.300s",
					q, coord, len(got.Rows), body, len(want.Rows), refBody)
			}
		}
	}

	// /forecast/batch: byte-identical. Guard first that the reference sits
	// in the exact-0 event-probability regime this golden depends on.
	refStatus, refFc := httpGet(t, ref.URL+"/forecast/batch?horizon=10m")
	if refStatus != 200 {
		t.Fatalf("reference forecast/batch: %d %s", refStatus, refFc)
	}
	var fb struct {
		Count     int `json:"count"`
		Forecasts []struct {
			Entity    string  `json:"entity"`
			EventProb float64 `json:"eventProb"`
		} `json:"forecasts"`
	}
	mustDecode(t, refFc, &fb)
	if fb.Count == 0 {
		t.Fatal("reference forecast/batch is empty — golden is vacuous")
	}
	for _, f := range fb.Forecasts {
		if f.EventProb != 0 {
			t.Fatalf("entity %s has eventProb %v: scenario left the partition-independent regime", f.Entity, f.EventProb)
		}
	}
	status, gotFc := c.Get(0, "/forecast/batch?horizon=10m")
	if status != 200 {
		t.Fatalf("cluster forecast/batch: %d %s", status, gotFc)
	}
	if !bytes.Equal(gotFc, refFc) {
		t.Fatalf("forecast/batch diverged:\n got %.500s\nwant %.500s", gotFc, refFc)
	}

	// /synopses/batch: byte-identical (summed integer counters re-divide
	// to the same float bits).
	refStatus, refSy := httpGet(t, ref.URL+"/synopses/batch")
	if refStatus != 200 {
		t.Fatalf("reference synopses/batch: %d %s", refStatus, refSy)
	}
	status, gotSy := c.Get(0, "/synopses/batch")
	if status != 200 {
		t.Fatalf("cluster synopses/batch: %d %s", status, gotSy)
	}
	if !bytes.Equal(gotSy, refSy) {
		t.Fatalf("synopses/batch diverged:\n got %.500s\nwant %.500s", gotSy, refSy)
	}
}

var httpClient = http.Client{Timeout: 30 * time.Second}

func httpPost(t *testing.T, url, contentType, body string) (int, []byte) {
	t.Helper()
	resp, err := (&httpClient).Post(url, contentType, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, buf.Bytes()
}

func httpGet(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := (&httpClient).Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, buf.Bytes()
}

func mustDecode(t *testing.T, b []byte, v any) {
	t.Helper()
	if err := json.Unmarshal(b, v); err != nil {
		t.Fatalf("decode %T from %.200s: %v", v, b, err)
	}
}
