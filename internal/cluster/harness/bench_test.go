package harness

import (
	"testing"
	"time"

	"github.com/datacron-project/datacron/internal/core"
	"github.com/datacron-project/datacron/internal/model"
	"github.com/datacron-project/datacron/internal/server"
	"github.com/datacron-project/datacron/internal/synth"
)

// BenchmarkClusterIngestForward measures the coordinator ingest path of a
// 2-node in-process cluster: per-line ring routing, per-owner re-framing
// into binary wire frames, the loopback HTTP forward to the owning peer and
// the in-process self-share — the full overhead cluster mode adds over
// single-node ingest (compare BenchmarkServerIngest).
func BenchmarkClusterIngestForward(b *testing.B) {
	sc := synth.GenMaritime(synth.MaritimeConfig{Seed: 99, Vessels: 40, Duration: time.Hour})
	const batch = 512
	var bodies []string
	var sizes []int
	for i := 0; i < len(sc.WireTimed); i += batch {
		end := i + batch
		if end > len(sc.WireTimed) {
			end = len(sc.WireTimed)
		}
		bodies = append(bodies, WireBody(sc.WireTimed[i:end]))
		sizes = append(sizes, end-i)
	}

	c := Start(b, Config{
		Nodes:    2,
		Scenario: sc,
		Core:     core.Config{Domain: model.Maritime},
		Server:   server.Config{Workers: 4, QueueLen: 1 << 16},
	})

	lines := 0
	b.ResetTimer()
	start := time.Now()
	for i := 0; b.Loop(); i++ {
		ir := c.Ingest(0, bodies[i%len(bodies)], false)
		if ir.Rejected != 0 {
			b.Fatalf("rejected %d lines with oversized queues: %+v", ir.Rejected, ir)
		}
		lines += sizes[i%len(bodies)]
	}
	c.QuiesceAll()
	b.ReportMetric(float64(lines)/time.Since(start).Seconds(), "lines/sec")
}
