package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/url"
	"strings"
	"time"

	"github.com/datacron-project/datacron/internal/onto"
	"github.com/datacron-project/datacron/internal/store"
)

// Membership and hash-range handoff.
//
// A membership change (join or leave) is orchestrated by whichever node
// receives the POST /cluster/join or /cluster/leave request:
//
//  1. Compute the next ring (current ± the node) — never installed yet.
//  2. Run the donor handoffs: on join, every current member donates the
//     hash ranges that move to the joiner; on leave, the leaver donates its
//     ranges to every remaining member. Each donor ships its whole store
//     (sealed segments verbatim in the snapshot block format plus a
//     head-replay tail); the target keeps exactly the fragments whose
//     entity moves donor→target between the two rings and stages them
//     invisibly.
//  3. Only after every handoff has committed does the coordinator broadcast
//     the new membership; each node flips its ring atomically on receipt.
//
// Atomicity: a fragment becomes visible on the target at commit (install +
// snapshot) and invisible on the donor at drop, which happens strictly
// after commit. A crash before commit loses nothing (the donor still owns
// everything; target staging is discarded and rebuilt by the retry, and
// install is idempotent). A crash between commit and the membership flip
// leaves the fragment present on both nodes — queries deduplicate under
// set semantics, and the retried join installs nothing new. There is no
// window in which a fragment exists on neither node.

// ringResponse is GET /cluster/ring.
type ringResponse struct {
	Self        string   `json:"self"`
	Version     int64    `json:"version"`
	VNodes      int      `json:"vnodes"`
	Members     []string `json:"members"`
	Fingerprint string   `json:"fingerprint"`
}

func (n *Node) handleRing(w http.ResponseWriter, r *http.Request) {
	ring, ver := n.Ring()
	writeJSON(w, http.StatusOK, ringResponse{
		Self:        n.cfg.Self,
		Version:     ver,
		VNodes:      ring.VNodes(),
		Members:     ring.Members(),
		Fingerprint: fmt.Sprintf("%016x", ring.Fingerprint()),
	})
}

// censusResponse is GET /cluster/census: the anchored entities this node
// physically holds — the ground truth the handoff tests reconcile against
// ring ownership.
type censusResponse struct {
	Entities  map[string]int `json:"entities"`
	Fragments int            `json:"fragments"`
}

func (n *Node) handleCensus(w http.ResponseWriter, r *http.Request) {
	ents, frags := n.census()
	writeJSON(w, http.StatusOK, censusResponse{Entities: ents, Fragments: frags})
}

// census counts the anchored fragments per recognised entity across every
// tier of the local store.
func (n *Node) census() (map[string]int, int) {
	ents := make(map[string]int)
	frags := 0
	n.cfg.Pipeline.Store.EachAnchorNode(func(iri string) {
		if e, ok := onto.AnchorEntityID(iri); ok {
			ents[e]++
			frags++
		}
	})
	return ents, frags
}

// membershipRequest is POST /cluster/membership: the coordinator's flip
// broadcast. A node adopts iff the version is newer than its own.
type membershipRequest struct {
	Version int64    `json:"version"`
	Members []string `json:"members"`
}

type membershipResponse struct {
	Adopted bool  `json:"adopted"`
	Version int64 `json:"version"`
}

func (n *Node) handleMembership(w http.ResponseWriter, r *http.Request) {
	var req membershipRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "bad json: "+err.Error(), http.StatusBadRequest)
		return
	}
	if req.Version <= 0 || len(req.Members) == 0 {
		http.Error(w, "version and members required", http.StatusBadRequest)
		return
	}
	adopted := n.adopt(req.Version, req.Members)
	_, ver := n.Ring()
	writeJSON(w, http.StatusOK, membershipResponse{Adopted: adopted, Version: ver})
}

// adopt installs a newer membership view; stale or same-version broadcasts
// are ignored (idempotent flips).
func (n *Node) adopt(version int64, members []string) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	if version <= n.version {
		return false
	}
	n.ring = NewRing(members, n.cfg.VNodes)
	n.version = version
	n.logger.Info("cluster membership adopted", "version", version, "members", members)
	return true
}

// changeRequest is POST /cluster/join and /cluster/leave.
type changeRequest struct {
	Node string `json:"node"`
}

type changeResponse struct {
	Version int64    `json:"version"`
	Members []string `json:"members"`
	Already bool     `json:"already,omitempty"`
}

// handleJoin admits a new node: every current member donates the hash
// ranges that move to it, then the enlarged membership is broadcast. The
// joiner must already be serving (empty or not — install is idempotent).
// On any donor failure the membership is left unchanged and the request
// fails; a retry redoes the handoffs (cheap for donors that already
// committed: their re-ship installs nothing).
func (n *Node) handleJoin(w http.ResponseWriter, r *http.Request) {
	var req changeRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil || req.Node == "" {
		http.Error(w, "body must be {\"node\": \"host:port\"}", http.StatusBadRequest)
		return
	}
	cur, ver := n.Ring()
	if cur.Has(req.Node) {
		writeJSON(w, http.StatusOK, changeResponse{Version: ver, Members: cur.Members(), Already: true})
		return
	}
	newMembers := cur.WithJoined(req.Node).Members()
	for _, donor := range cur.Members() {
		if err := n.executeOn(donor, req.Node, newMembers); err != nil {
			writeJSON(w, http.StatusBadGateway, errorResponse{Error: "handoff " + donor + " -> " + req.Node + ": " + err.Error()})
			return
		}
	}
	n.broadcastMembership(ver+1, newMembers, newMembers)
	writeJSON(w, http.StatusOK, changeResponse{Version: ver + 1, Members: newMembers})
}

// handleLeave retires a member: the leaver donates each moving hash range
// to its new owner, then the shrunk membership is broadcast to everyone —
// including the leaver, so it stops claiming ownership even if it keeps
// serving.
func (n *Node) handleLeave(w http.ResponseWriter, r *http.Request) {
	var req changeRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil || req.Node == "" {
		http.Error(w, "body must be {\"node\": \"host:port\"}", http.StatusBadRequest)
		return
	}
	cur, ver := n.Ring()
	if !cur.Has(req.Node) {
		writeJSON(w, http.StatusOK, changeResponse{Version: ver, Members: cur.Members(), Already: true})
		return
	}
	newRing := cur.WithLeft(req.Node)
	if newRing.Size() == 0 {
		http.Error(w, "cannot remove the last member", http.StatusBadRequest)
		return
	}
	newMembers := newRing.Members()
	for _, target := range newMembers {
		if err := n.executeOn(req.Node, target, newMembers); err != nil {
			writeJSON(w, http.StatusBadGateway, errorResponse{Error: "handoff " + req.Node + " -> " + target + ": " + err.Error()})
			return
		}
	}
	n.broadcastMembership(ver+1, newMembers, cur.Members())
	writeJSON(w, http.StatusOK, changeResponse{Version: ver + 1, Members: newMembers})
}

// executeOn runs one donor→target handoff, locally when this node is the
// donor, over the execute RPC otherwise.
func (n *Node) executeOn(donor, target string, newMembers []string) error {
	if donor == n.cfg.Self {
		_, err := n.executeHandoff(target, newMembers)
		return err
	}
	body, _ := json.Marshal(handoffExecuteRequest{Target: target, NewMembers: newMembers})
	pr := n.do(donor, http.MethodPost, "/cluster/handoff/execute", "application/json", body, nil)
	if pr.err != nil {
		return pr.err
	}
	if pr.status != http.StatusOK {
		return fmt.Errorf("donor status %d: %s", pr.status, strings.TrimSpace(string(pr.body)))
	}
	return nil
}

// broadcastMembership flips every recipient to the new view. A recipient
// that cannot be reached is logged and skipped: it keeps the old ring until
// an operator retries the change or the next broadcast reaches it (its
// stale forwards still land on nodes that serve them correctly, and its
// version check makes the eventual flip idempotent).
func (n *Node) broadcastMembership(version int64, members, recipients []string) {
	body, _ := json.Marshal(membershipRequest{Version: version, Members: members})
	for _, m := range recipients {
		if m == n.cfg.Self {
			n.adopt(version, members)
			continue
		}
		pr := n.do(m, http.MethodPost, "/cluster/membership", "application/json", body, nil)
		if pr.err != nil || pr.status != http.StatusOK {
			n.logger.Warn("membership broadcast failed", "member", m, "err", peerFailure(pr))
		}
	}
}

// handoffExecuteRequest is POST /cluster/handoff/execute: run this node's
// donor side of one handoff.
type handoffExecuteRequest struct {
	Target     string   `json:"target"`
	NewMembers []string `json:"newMembers"`
}

type handoffExecuteResponse struct {
	Installed        int `json:"installed"`
	Skipped          int `json:"skipped"`
	DroppedFragments int `json:"droppedFragments"`
	DroppedTriples   int `json:"droppedTriples"`
}

func (n *Node) handleHandoffExecute(w http.ResponseWriter, r *http.Request) {
	var req handoffExecuteRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil || req.Target == "" || len(req.NewMembers) == 0 {
		http.Error(w, "target and newMembers required", http.StatusBadRequest)
		return
	}
	res, err := n.executeHandoff(req.Target, req.NewMembers)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

// executeHandoff is the donor side of one handoff session: quiesce local
// ingest so the cut is complete, ship the store, wait for the target's
// durable commit, and only then drop the moved range locally (followed by a
// local snapshot so a later restart cannot replay the moved lines back).
// The failpoint hook fires before each step, letting tests freeze a donor
// at any protocol point.
func (n *Node) executeHandoff(target string, newMembers []string) (handoffExecuteResponse, error) {
	n.handoffMu.Lock()
	defer n.handoffMu.Unlock()
	var res handoffExecuteResponse
	cur, _ := n.Ring()
	if target == n.cfg.Self {
		return res, fmt.Errorf("donor and target are both %s", n.cfg.Self)
	}
	newRing := NewRing(newMembers, cur.VNodes())
	moved := movedPredicate(cur, newRing, n.cfg.Self, target)
	n.cfg.Server.Ingestor().Quiesce(30 * time.Second)

	session := "?donor=" + url.QueryEscape(n.cfg.Self)
	if err := n.failpoint("begin"); err != nil {
		return res, err
	}
	beginBody, _ := json.Marshal(handoffBeginRequest{
		Donor:      n.cfg.Self,
		OldMembers: cur.Members(),
		NewMembers: newMembers,
	})
	if err := n.rpcOK(target, "/cluster/handoff/begin", "application/json", beginBody); err != nil {
		return res, fmt.Errorf("begin: %w", err)
	}

	// A failpoint error models a donor crash at that protocol step, so it
	// deliberately does NOT abort the target's staging session — exactly
	// the garbage a real crash leaves behind. A retried handoff's begin
	// replaces the stale session.
	if err := n.failpoint("data"); err != nil {
		return res, err
	}
	var buf bytes.Buffer
	if err := n.cfg.Pipeline.Store.WriteHandoff(&buf); err != nil {
		n.abortOn(target, session)
		return res, fmt.Errorf("serialise store: %w", err)
	}
	if err := n.rpcOK(target, "/cluster/handoff/data"+session, "application/octet-stream", buf.Bytes()); err != nil {
		n.abortOn(target, session)
		return res, fmt.Errorf("data: %w", err)
	}

	if err := n.failpoint("commit"); err != nil {
		return res, err
	}
	pr := n.do(target, http.MethodPost, "/cluster/handoff/commit"+session, "", nil, nil)
	if pr.err != nil {
		return res, fmt.Errorf("commit: %w", pr.err)
	}
	if pr.status != http.StatusOK {
		return res, fmt.Errorf("commit: status %d: %s", pr.status, strings.TrimSpace(string(pr.body)))
	}
	var cres handoffCommitResponse
	_ = json.Unmarshal(pr.body, &cres)
	res.Installed, res.Skipped = cres.Installed, cres.Skipped

	if err := n.failpoint("drop"); err != nil {
		return res, err
	}
	res.DroppedFragments, res.DroppedTriples = n.cfg.Pipeline.Store.DropAnchored(moved)
	n.handoffsOut.Add(1)
	n.logger.Info("handoff complete", "target", target,
		"installed", res.Installed, "skipped", res.Skipped,
		"droppedFragments", res.DroppedFragments, "droppedTriples", res.DroppedTriples)
	if err := n.localSnapshot(); err != nil {
		// The drop already happened in memory; without the checkpoint a
		// restart would replay the moved lines back (transient double-own,
		// masked by query dedup until the next snapshot or retried change).
		n.logger.Warn("post-drop snapshot failed", "err", err)
	}
	return res, nil
}

// movedPredicate is the one ownership-transfer rule both ends of a handoff
// evaluate: an anchored fragment moves iff its entity is owned by the donor
// under the old ring and by the target under the new one. Rings are
// deterministic, so donor and target always agree on the moved set.
func movedPredicate(oldRing, newRing *Ring, donor, target string) func(string) bool {
	return func(iri string) bool {
		e, ok := onto.AnchorEntityID(iri)
		if !ok {
			return false
		}
		return oldRing.Owner(e) == donor && newRing.Owner(e) == target
	}
}

func (n *Node) failpoint(step string) error {
	if n.cfg.Failpoint == nil {
		return nil
	}
	return n.cfg.Failpoint(step)
}

// rpcOK performs one cluster RPC and folds transport and status errors.
func (n *Node) rpcOK(member, pathAndQuery, contentType string, body []byte) error {
	pr := n.do(member, http.MethodPost, pathAndQuery, contentType, body, nil)
	if pr.err != nil {
		return pr.err
	}
	if pr.status != http.StatusOK {
		return fmt.Errorf("status %d: %s", pr.status, strings.TrimSpace(string(pr.body)))
	}
	return nil
}

func (n *Node) abortOn(target, session string) {
	_ = n.rpcOK(target, "/cluster/handoff/abort"+session, "", nil)
}

// localSnapshot checkpoints the local pipeline through the server's own
// snapshot path (same locking as POST /snapshot). A 409 means the node runs
// without a data directory — nothing to checkpoint, not an error.
func (n *Node) localSnapshot() error {
	pr := n.do(n.cfg.Self, http.MethodPost, "/snapshot", "", nil, nil)
	if pr.err != nil {
		return pr.err
	}
	if pr.status != http.StatusOK && pr.status != http.StatusConflict {
		return fmt.Errorf("status %d: %s", pr.status, strings.TrimSpace(string(pr.body)))
	}
	return nil
}

// handoffBeginRequest is POST /cluster/handoff/begin (target side): open a
// staging session for one donor. A stale session from an earlier aborted
// attempt by the same donor is replaced.
type handoffBeginRequest struct {
	Donor      string   `json:"donor"`
	OldMembers []string `json:"oldMembers"`
	NewMembers []string `json:"newMembers"`
}

func (n *Node) handleHandoffBegin(w http.ResponseWriter, r *http.Request) {
	var req handoffBeginRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil || req.Donor == "" || len(req.OldMembers) == 0 || len(req.NewMembers) == 0 {
		http.Error(w, "donor, oldMembers and newMembers required", http.StatusBadRequest)
		return
	}
	oldRing := NewRing(req.OldMembers, n.cfg.VNodes)
	newRing := NewRing(req.NewMembers, n.cfg.VNodes)
	keep := movedPredicate(oldRing, newRing, req.Donor, n.cfg.Self)
	n.stagingMu.Lock()
	n.staging[req.Donor] = &stagingSession{keep: keep}
	n.stagingMu.Unlock()
	writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
}

// handleHandoffData streams one donor's store into its staging session,
// keeping only the fragments that move here. May be called repeatedly
// within a session (chunked shipping); fragments accumulate.
func (n *Node) handleHandoffData(w http.ResponseWriter, r *http.Request) {
	donor := r.URL.Query().Get("donor")
	n.stagingMu.Lock()
	sess := n.staging[donor]
	n.stagingMu.Unlock()
	if sess == nil {
		http.Error(w, "no handoff session for donor "+donor, http.StatusConflict)
		return
	}
	frags, err := store.ReadHandoff(r.Body, sess.keep)
	if err != nil {
		http.Error(w, "decode handoff stream: "+err.Error(), http.StatusBadRequest)
		return
	}
	n.stagingMu.Lock()
	sess.frags = append(sess.frags, frags...)
	staged := len(sess.frags)
	n.stagingMu.Unlock()
	writeJSON(w, http.StatusOK, map[string]int{"staged": staged})
}

type handoffCommitResponse struct {
	Installed int `json:"installed"`
	Skipped   int `json:"skipped"`
}

// handleHandoffCommit makes the staged fragments visible (idempotently —
// fragments this node already holds are skipped) and checkpoints them with
// a local snapshot before acknowledging, so the donor only drops its copy
// once the target holds a durable one. If the snapshot fails the install
// stands (re-committing skips everything) but the donor is told to keep its
// copy.
func (n *Node) handleHandoffCommit(w http.ResponseWriter, r *http.Request) {
	donor := r.URL.Query().Get("donor")
	n.stagingMu.Lock()
	sess := n.staging[donor]
	delete(n.staging, donor)
	n.stagingMu.Unlock()
	if sess == nil {
		http.Error(w, "no handoff session for donor "+donor, http.StatusConflict)
		return
	}
	installed, skipped := n.cfg.Pipeline.Store.InstallHandoff(sess.frags)
	if err := n.localSnapshot(); err != nil {
		http.Error(w, "checkpoint after install: "+err.Error(), http.StatusInternalServerError)
		return
	}
	n.handoffsIn.Add(1)
	n.logger.Info("handoff committed", "donor", donor, "installed", installed, "skipped", skipped)
	writeJSON(w, http.StatusOK, handoffCommitResponse{Installed: installed, Skipped: skipped})
}

func (n *Node) handleHandoffAbort(w http.ResponseWriter, r *http.Request) {
	donor := r.URL.Query().Get("donor")
	n.stagingMu.Lock()
	_, had := n.staging[donor]
	delete(n.staging, donor)
	n.stagingMu.Unlock()
	writeJSON(w, http.StatusOK, map[string]bool{"aborted": had})
}
