package cluster

import (
	"encoding/json"
	"io"
	"net/http"
	"sort"
	"strings"
	"time"

	"github.com/datacron-project/datacron/internal/query"
	"github.com/datacron-project/datacron/internal/server"
)

// errorResponse is the scatter-gather error body (same {"error": ...} shape
// as the single-node forecast/synopses error bodies).
type errorResponse struct {
	Error string `json:"error"`
}

// clusterQueryResponse is the coordinator's POST /query body: the
// single-node queryResponse fields plus Partial, set when one or more nodes
// could not contribute (their rows are simply absent — a degraded result,
// never an error, as long as at least one node answered).
type clusterQueryResponse struct {
	Vars           []string   `json:"vars"`
	Rows           [][]string `json:"rows"`
	ShardsVisited  int        `json:"shardsVisited"`
	SegmentsPruned int        `json:"segmentsPruned"`
	ElapsedUS      int64      `json:"elapsedUs"`
	Partial        bool       `json:"partial,omitempty"`
}

// peerQueryResponse mirrors the single-node queryResponse for decoding.
type peerQueryResponse struct {
	Vars           []string   `json:"vars"`
	Rows           [][]string `json:"rows"`
	ShardsVisited  int        `json:"shardsVisited"`
	SegmentsPruned int        `json:"segmentsPruned"`
}

// handleQuery is the coordinator read path: parse the query once for
// validation and for its final clauses (grouping, aggregates, ordering,
// LIMIT), fan the query to every node marked partial (PartialQueryHeader —
// each node runs the StripFinal form and returns its distinct input rows),
// merge the row sets under the engine's own ordering, and run the final
// operators once globally (query.Finalize) — the coordinator-side half of
// the per-shard merge the engine already does node-locally, so a cluster
// answer is bit-identical to a single node holding the same data.
func (n *Node) handleQuery(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
	if err != nil {
		http.Error(w, "read body: "+err.Error(), http.StatusBadRequest)
		return
	}
	src := string(body)
	if strings.Contains(r.Header.Get("Content-Type"), "application/json") {
		var req struct {
			Query string `json:"query"`
		}
		if err := json.Unmarshal(body, &req); err != nil {
			http.Error(w, "bad json: "+err.Error(), http.StatusBadRequest)
			return
		}
		src = req.Query
	}
	if strings.TrimSpace(src) == "" {
		http.Error(w, "empty query", http.StatusBadRequest)
		return
	}
	q, perr := query.Parse(src)
	if perr != nil {
		http.Error(w, perr.Error(), http.StatusBadRequest)
		return
	}

	ring, _ := n.Ring()
	results := n.fanOut(ring.Members(), http.MethodPost, "/query", "text/plain",
		[]byte(src), map[string]string{server.PartialQueryHeader: "1"})

	var partials [][][]string
	var vars []string
	resp := clusterQueryResponse{}
	failures := 0
	var firstFailure string
	for _, pr := range results {
		if pr.err != nil || pr.status != http.StatusOK {
			failures++
			if firstFailure == "" {
				firstFailure = peerFailure(pr)
			}
			continue
		}
		var pqr peerQueryResponse
		if err := json.Unmarshal(pr.body, &pqr); err != nil {
			failures++
			if firstFailure == "" {
				firstFailure = pr.member + ": bad response: " + err.Error()
			}
			continue
		}
		vars = pqr.Vars
		partials = append(partials, pqr.Rows)
		resp.ShardsVisited += pqr.ShardsVisited
		resp.SegmentsPruned += pqr.SegmentsPruned
	}
	if len(partials) == 0 {
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: "no cluster node reachable: " + firstFailure})
		return
	}
	rows := query.MergeStringRows(partials...)
	outVars, outRows, ferr := query.Finalize(q, vars, rows)
	if ferr != nil {
		writeJSON(w, http.StatusInternalServerError, errorResponse{Error: ferr.Error()})
		return
	}
	resp.Vars, resp.Rows = outVars, outRows
	if resp.Rows == nil {
		resp.Rows = [][]string{}
	}
	resp.Partial = failures > 0
	if resp.Partial {
		n.scatterPartials.Add(1)
	}
	resp.ElapsedUS = time.Since(start).Microseconds()
	writeJSON(w, http.StatusOK, resp)
}

// forecastJSON, forecastBatch and the synopses shapes mirror the
// single-node wire structs field for field (same names, order and
// omitempty), so a complete cluster merge re-encodes byte-identically to a
// single node over the same data — the property the golden harness test
// pins.
type forecastJSON struct {
	Entity     string  `json:"entity"`
	TS         int64   `json:"ts"`
	Method     string  `json:"method"`
	Lon        float64 `json:"lon"`
	Lat        float64 `json:"lat"`
	Alt        float64 `json:"alt,omitempty"`
	RadiusM    float64 `json:"radiusM"`
	HistoryLen int     `json:"historyLen"`
	LastTS     int64   `json:"lastTS"`
	EventProb  float64 `json:"eventProb"`
}

type forecastBatch struct {
	HorizonMS int64          `json:"horizonMs"`
	Count     int            `json:"count"`
	Forecasts []forecastJSON `json:"forecasts"`
	Partial   bool           `json:"partial,omitempty"`
}

// handleForecastBatch scatters GET /forecast/batch to every node and
// concatenates the per-node forecast sets: each live entity's history lives
// only on its owning node, so the sets are disjoint and the merge is a
// sort by entity — exactly the order the single-node endpoint emits.
func (n *Node) handleForecastBatch(w http.ResponseWriter, r *http.Request) {
	ring, _ := n.Ring()
	pathAndQuery := "/forecast/batch"
	if r.URL.RawQuery != "" {
		pathAndQuery += "?" + r.URL.RawQuery
	}
	results := n.fanOut(ring.Members(), http.MethodGet, pathAndQuery, "", nil, nil)

	merged := forecastBatch{Forecasts: []forecastJSON{}}
	ok, failures := 0, 0
	var firstFail peerResponse
	for _, pr := range results {
		if pr.err != nil || pr.status != http.StatusOK {
			failures++
			if failures == 1 {
				firstFail = pr
			}
			continue
		}
		var fb forecastBatch
		if err := json.Unmarshal(pr.body, &fb); err != nil {
			failures++
			if failures == 1 {
				firstFail = peerResponse{member: pr.member, err: err}
			}
			continue
		}
		ok++
		merged.HorizonMS = fb.HorizonMS
		merged.Forecasts = append(merged.Forecasts, fb.Forecasts...)
	}
	if ok == 0 {
		n.relayFailure(w, firstFail)
		return
	}
	sort.Slice(merged.Forecasts, func(i, j int) bool { return merged.Forecasts[i].Entity < merged.Forecasts[j].Entity })
	merged.Count = len(merged.Forecasts)
	merged.Partial = failures > 0
	if merged.Partial {
		n.scatterPartials.Add(1)
	}
	writeJSON(w, http.StatusOK, merged)
}

type synopsisSummaryJSON struct {
	Entity   string  `json:"entity"`
	Raw      int64   `json:"raw"`
	Critical int64   `json:"critical"`
	Ratio    float64 `json:"ratio"`
	LastTS   int64   `json:"lastTS"`
}

type synopsesBatch struct {
	Count    int                   `json:"count"`
	Observed int64                 `json:"observed"`
	Critical int64                 `json:"critical"`
	Ratio    float64               `json:"ratio"`
	ByKind   map[string]int64      `json:"byKind"`
	Entities []synopsisSummaryJSON `json:"entities"`
	Partial  bool                  `json:"partial,omitempty"`
}

// handleSynopsesBatch scatters GET /synopses/batch. Per-entity summaries
// concatenate (disjoint ownership) and the hub-wide accounting re-derives
// from the summed integer counters — Ratio is observed/critical over those
// sums, the same expression the single-node hub evaluates, so the division
// (and its float bits) match a single node holding the whole stream.
func (n *Node) handleSynopsesBatch(w http.ResponseWriter, r *http.Request) {
	ring, _ := n.Ring()
	results := n.fanOut(ring.Members(), http.MethodGet, "/synopses/batch", "", nil, nil)

	merged := synopsesBatch{ByKind: map[string]int64{}, Entities: []synopsisSummaryJSON{}}
	ok, failures := 0, 0
	var firstFail peerResponse
	for _, pr := range results {
		if pr.err != nil || pr.status != http.StatusOK {
			failures++
			if failures == 1 {
				firstFail = pr
			}
			continue
		}
		var sb synopsesBatch
		if err := json.Unmarshal(pr.body, &sb); err != nil {
			failures++
			if failures == 1 {
				firstFail = peerResponse{member: pr.member, err: err}
			}
			continue
		}
		ok++
		merged.Observed += sb.Observed
		merged.Critical += sb.Critical
		for k, v := range sb.ByKind {
			merged.ByKind[k] += v
		}
		merged.Entities = append(merged.Entities, sb.Entities...)
	}
	if ok == 0 {
		n.relayFailure(w, firstFail)
		return
	}
	if merged.Critical == 0 {
		merged.Ratio = float64(merged.Observed)
	} else {
		merged.Ratio = float64(merged.Observed) / float64(merged.Critical)
	}
	sort.Slice(merged.Entities, func(i, j int) bool { return merged.Entities[i].Entity < merged.Entities[j].Entity })
	merged.Count = len(merged.Entities)
	merged.Partial = failures > 0
	if merged.Partial {
		n.scatterPartials.Add(1)
	}
	writeJSON(w, http.StatusOK, merged)
}

// proxyByKey forwards a single-entity request (GET /forecast?entity=,
// GET /synopses/{id}) to the entity's owning node and relays the response
// verbatim — status, Content-Type and body — so single-entity semantics
// (404 unknown, 400 bad params, 503 disabled) are exactly the single-node
// ones.
func (n *Node) proxyByKey(w http.ResponseWriter, r *http.Request, key string) {
	if key == "" {
		// Let the local handler produce its own 400/404 shape.
		n.local.ServeHTTP(w, r)
		return
	}
	ring, _ := n.Ring()
	owner := ring.Owner(key)
	pr := n.do(owner, r.Method, r.URL.RequestURI(), "", nil, nil)
	if pr.err != nil {
		n.forwardErrors.Add(1)
		writeJSON(w, http.StatusBadGateway, errorResponse{Error: "owner " + owner + " unreachable: " + pr.err.Error()})
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(pr.status)
	_, _ = w.Write(pr.body)
}

// relayFailure reproduces the first failed sub-response at the coordinator:
// a transport error becomes 502, a peer's error status (e.g. the 503 of a
// disabled subsystem, or 400 for a bad horizon) is relayed verbatim so
// clients see single-node error semantics.
func (n *Node) relayFailure(w http.ResponseWriter, pr peerResponse) {
	if pr.err != nil {
		writeJSON(w, http.StatusBadGateway, errorResponse{Error: peerFailure(pr)})
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(pr.status)
	_, _ = w.Write(pr.body)
}

// peerFailure renders one failed sub-response for an error message.
func peerFailure(pr peerResponse) string {
	if pr.err != nil {
		return pr.member + ": " + pr.err.Error()
	}
	return pr.member + ": status " + http.StatusText(pr.status)
}
