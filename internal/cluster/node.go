// Package cluster turns N single-node datAcron servers into one logical
// store: a consistent-hash ring (ring.go) assigns every entity key to
// exactly one owning node, ingest is forwarded to owners as binary wire
// frames (ingest.go), reads scatter to all nodes and merge at the
// coordinator (scatter.go), and membership changes relocate hash ranges by
// shipping whole sealed segments plus a head-replay tail (membership.go).
//
// Every node runs the same code: any node accepts any client request and
// acts as its coordinator. Cluster-internal RPCs live under /cluster/ and
// internal sub-requests carry ForwardedHeader so the receiving node serves
// them locally instead of re-coordinating (no forwarding loops).
//
// See DESIGN.md §14 for the ring design, the forward path, the
// scatter-gather merge argument, and the handoff atomicity argument;
// OPERATIONS.md "Cluster mode" for the operational walkthrough.
package cluster

import (
	"bytes"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/datacron-project/datacron/internal/core"
	"github.com/datacron-project/datacron/internal/obs"
	"github.com/datacron-project/datacron/internal/server"
	"github.com/datacron-project/datacron/internal/store"
)

// ForwardedHeader marks a cluster-internal sub-request (ingest forward or
// scatter-gather fan-out). A node receiving it serves the request against
// its local pipeline without consulting the ring, which is what terminates
// the forwarding recursion.
const ForwardedHeader = "X-Datacron-Forwarded"

// Config parameterises one cluster node.
type Config struct {
	// Self is this node's advertised host:port — its identity on the ring.
	// Must be dialable by every peer and must match the address peers list
	// for it.
	Self string
	// Members is the static bootstrap membership, including Self (it is
	// added if absent). Join/leave RPCs evolve it at runtime.
	Members []string
	// VNodes is the virtual-node count per member (default DefaultVNodes).
	VNodes int

	// Server is the local single-node serving layer this node wraps.
	Server *server.Server
	// Pipeline is the local pipeline (routing keys, store handoff).
	Pipeline *core.Pipeline

	// Logger receives cluster lifecycle events. nil = discard.
	Logger *slog.Logger
	// Client performs peer HTTP requests (default: 30s-timeout client).
	Client *http.Client

	// Failpoint, when non-nil, is consulted at named steps of the donor
	// handoff protocol ("begin", "data", "commit", "drop"); a non-nil error
	// aborts the handoff at that step. Tests use it to freeze a donor
	// mid-handoff and kill it.
	Failpoint func(step string) error
}

// Node is one member of the cluster: the local server plus the coordinator
// logic. It implements http.Handler and replaces the plain server handler
// as the listener's root.
type Node struct {
	cfg    Config
	local  http.Handler
	client *http.Client
	logger *slog.Logger
	mux    *http.ServeMux

	// mu guards the membership view. The ring itself is immutable; a
	// membership change swaps the pointer and bumps the version.
	mu      sync.RWMutex
	ring    *Ring
	version int64

	// handoffMu serialises this node's donor-side handoffs.
	handoffMu sync.Mutex

	// stagingMu guards the target-side handoff staging areas, keyed by
	// donor (one in-flight session per donor; a new begin replaces a stale
	// one).
	stagingMu sync.Mutex
	staging   map[string]*stagingSession

	// Counters surfaced on /metrics via the server's ExtraMetrics hook.
	forwardedLines  atomic.Int64
	forwardErrors   atomic.Int64
	scatterPartials atomic.Int64
	handoffsOut     atomic.Int64
	handoffsIn      atomic.Int64
}

// stagingSession is one target-side handoff in progress: the filter that
// decides which shipped fragments this node keeps, and the fragments staged
// so far. Nothing is visible to queries until commit installs it.
type stagingSession struct {
	keep  func(nodeIRI string) bool
	frags []store.HandoffFragment
}

// New wraps srv as a cluster node. The returned Node is the HTTP root
// handler; wire its WriteMetrics into server.Config.ExtraMetrics to expose
// the ring and ownership gauges.
func New(cfg Config) (*Node, error) {
	if cfg.Self == "" {
		return nil, fmt.Errorf("cluster: Self is required")
	}
	if cfg.Server == nil || cfg.Pipeline == nil {
		return nil, fmt.Errorf("cluster: Server and Pipeline are required")
	}
	members := cfg.Members
	if !contains(members, cfg.Self) {
		members = append(append([]string(nil), members...), cfg.Self)
	}
	n := &Node{
		cfg:     cfg,
		local:   cfg.Server.Handler(),
		client:  cfg.Client,
		logger:  cfg.Logger,
		mux:     http.NewServeMux(),
		ring:    NewRing(members, cfg.VNodes),
		version: 1,
		staging: make(map[string]*stagingSession),
	}
	if n.client == nil {
		n.client = &http.Client{Timeout: 30 * time.Second}
	}
	if n.logger == nil {
		n.logger = obs.Discard()
	}
	n.mux.HandleFunc("GET /cluster/ring", n.handleRing)
	n.mux.HandleFunc("GET /cluster/census", n.handleCensus)
	n.mux.HandleFunc("POST /cluster/membership", n.handleMembership)
	n.mux.HandleFunc("POST /cluster/join", n.handleJoin)
	n.mux.HandleFunc("POST /cluster/leave", n.handleLeave)
	n.mux.HandleFunc("POST /cluster/handoff/execute", n.handleHandoffExecute)
	n.mux.HandleFunc("POST /cluster/handoff/begin", n.handleHandoffBegin)
	n.mux.HandleFunc("POST /cluster/handoff/data", n.handleHandoffData)
	n.mux.HandleFunc("POST /cluster/handoff/commit", n.handleHandoffCommit)
	n.mux.HandleFunc("POST /cluster/handoff/abort", n.handleHandoffAbort)
	return n, nil
}

// Ring returns the current membership view (immutable) and its version.
func (n *Node) Ring() (*Ring, int64) {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.ring, n.version
}

// Self returns this node's ring identity.
func (n *Node) Self() string { return n.cfg.Self }

// ServeHTTP routes a request: cluster-internal RPCs to the internal mux,
// forwarded sub-requests straight to the local server, client traffic on
// the clustered endpoints through the coordinator logic, and everything
// else (SSE, range, admin, metrics) to the local server.
func (n *Node) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if strings.HasPrefix(r.URL.Path, "/cluster/") {
		n.mux.ServeHTTP(w, r)
		return
	}
	if r.Header.Get(ForwardedHeader) != "" {
		n.local.ServeHTTP(w, r)
		return
	}
	switch {
	case r.Method == http.MethodPost && r.URL.Path == "/ingest":
		n.handleIngest(w, r)
	case r.Method == http.MethodPost && r.URL.Path == "/query":
		n.handleQuery(w, r)
	case r.Method == http.MethodGet && r.URL.Path == "/forecast/batch":
		n.handleForecastBatch(w, r)
	case r.Method == http.MethodGet && r.URL.Path == "/synopses/batch":
		n.handleSynopsesBatch(w, r)
	case r.Method == http.MethodGet && r.URL.Path == "/forecast":
		n.proxyByKey(w, r, r.URL.Query().Get("entity"))
	case r.Method == http.MethodGet && strings.HasPrefix(r.URL.Path, "/synopses/"):
		n.proxyByKey(w, r, strings.TrimPrefix(r.URL.Path, "/synopses/"))
	default:
		n.local.ServeHTTP(w, r)
	}
}

// peerResponse is the outcome of one cluster-internal sub-request.
type peerResponse struct {
	member string
	status int
	body   []byte
	err    error // transport failure (member unreachable)
}

// do performs one cluster-internal request against member: in process when
// member is this node (no TCP round trip, no listener dependency), over
// n.client otherwise. pathAndQuery starts with "/". header entries are
// copied onto the request; ForwardedHeader is always set.
func (n *Node) do(member, method, pathAndQuery, contentType string, body []byte, header map[string]string) peerResponse {
	if member == n.cfg.Self {
		r, err := http.NewRequest(method, pathAndQuery, bytes.NewReader(body))
		if err != nil {
			return peerResponse{member: member, err: err}
		}
		decorate(r, contentType, header)
		rec := &memResponse{header: make(http.Header), status: http.StatusOK}
		n.local.ServeHTTP(rec, r)
		return peerResponse{member: member, status: rec.status, body: rec.body.Bytes()}
	}
	r, err := http.NewRequest(method, "http://"+member+pathAndQuery, bytes.NewReader(body))
	if err != nil {
		return peerResponse{member: member, err: err}
	}
	decorate(r, contentType, header)
	resp, err := n.client.Do(r)
	if err != nil {
		return peerResponse{member: member, err: err}
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return peerResponse{member: member, err: err}
	}
	return peerResponse{member: member, status: resp.StatusCode, body: b}
}

func decorate(r *http.Request, contentType string, header map[string]string) {
	r.Header.Set(ForwardedHeader, "1")
	if contentType != "" {
		r.Header.Set("Content-Type", contentType)
	}
	for k, v := range header {
		r.Header.Set(k, v)
	}
}

// memResponse is the in-process ResponseWriter for self-directed
// sub-requests.
type memResponse struct {
	header http.Header
	status int
	body   bytes.Buffer
}

func (m *memResponse) Header() http.Header { return m.header }
func (m *memResponse) WriteHeader(code int) {
	m.status = code
}
func (m *memResponse) Write(b []byte) (int, error) { return m.body.Write(b) }

// fanOut performs the same request against every member concurrently and
// returns the responses in membership order.
func (n *Node) fanOut(members []string, method, pathAndQuery, contentType string, body []byte, header map[string]string) []peerResponse {
	out := make([]peerResponse, len(members))
	var wg sync.WaitGroup
	for i, m := range members {
		wg.Add(1)
		go func(i int, m string) {
			defer wg.Done()
			out[i] = n.do(m, method, pathAndQuery, contentType, body, header)
		}(i, m)
	}
	wg.Wait()
	return out
}

// WriteMetrics appends the cluster gauges to a /metrics render (wired via
// server.Config.ExtraMetrics). The ownership gauges are census-derived —
// O(anchored fragments) per scrape — which is what lets an operator (and
// the handoff golden test) assert that no entity is double- or un-owned:
// after a membership change settles, every node reports the same ring
// version and fingerprint, and the per-node owned-entity counts sum to the
// global entity count.
func (n *Node) WriteMetrics(mw *obs.MetricsWriter) {
	ring, version := n.Ring()
	mw.Gauge("datacron_cluster_ring_version", "Current membership version on this node.", float64(version))
	mw.Gauge("datacron_cluster_members", "Members in the current ring.", float64(ring.Size()))
	mw.Gauge("datacron_cluster_ring_fingerprint32", "Low 32 bits of the ring fingerprint (membership agreement check).", float64(ring.Fingerprint()&0xffffffff))
	ents, frags := n.census()
	mw.Gauge("datacron_cluster_owned_entities", "Distinct anchored entities held by this node.", float64(len(ents)))
	mw.Gauge("datacron_cluster_owned_fragments", "Anchored fragments held by this node.", float64(frags))
	mw.Counter("datacron_cluster_ingest_forwarded_total", "Ingest lines forwarded to an owning peer.", n.forwardedLines.Load())
	mw.Counter("datacron_cluster_forward_errors_total", "Forward sub-requests that failed outright (peer unreachable or unexpected status).", n.forwardErrors.Load())
	mw.Counter("datacron_cluster_scatter_partials_total", "Scatter-gather responses served with partial=true.", n.scatterPartials.Load())
	mw.Counter("datacron_cluster_handoffs_out_total", "Donor-side handoffs completed by this node.", n.handoffsOut.Load())
	mw.Counter("datacron_cluster_handoffs_in_total", "Target-side handoffs committed by this node.", n.handoffsIn.Load())
}

func contains(ss []string, s string) bool {
	for _, v := range ss {
		if v == s {
			return true
		}
	}
	return false
}
