package cluster

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"time"

	"github.com/datacron-project/datacron/internal/wire"
)

// ownerIngest is one owning node's share of a coordinated ingest batch.
type ownerIngest struct {
	Lines    int    `json:"lines"`
	Accepted int    `json:"accepted"`
	Rejected int    `json:"rejected"`
	Error    string `json:"error,omitempty"`
}

// clusterIngestResponse is the coordinator's POST /ingest body. Accepted
// and Rejected are sums over the per-owner sub-batches; unlike single-node
// mode, Accepted is NOT a resumable prefix offset of the original body —
// sub-batches land on different owners, so each owner reports its own exact
// prefix in Owners and a client that must avoid re-sending ingested lines
// resumes per owner. Pending sums the owners' queue depths.
type clusterIngestResponse struct {
	Accepted int                    `json:"accepted"`
	Rejected int                    `json:"rejected"`
	Pending  int64                  `json:"pending"`
	Error    string                 `json:"error,omitempty"`
	Owners   map[string]ownerIngest `json:"owners,omitempty"`
}

// peerIngestResponse mirrors the single-node ingestResponse for decoding
// sub-request results.
type peerIngestResponse struct {
	Accepted int    `json:"accepted"`
	Rejected int    `json:"rejected"`
	Pending  int64  `json:"pending"`
	Error    string `json:"error,omitempty"`
}

// handleIngest is the coordinator ingest path: decode the batch (text lines
// or binary frames, same formats as the single-node endpoint), route every
// line to its owning node through the ring, re-frame each owner's share as
// one binary wire frame, and dispatch all shares concurrently — the node's
// own share in process, the rest as forwarded POST /ingest sub-requests.
//
// Backpressure propagates: any owner that sheds (429) or cannot be reached
// makes the coordinator respond 429 with Retry-After, never silently
// dropping the lines (the unreachable owner's share counts as rejected).
func (n *Node) handleIngest(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, 256<<20))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, clusterIngestResponse{Error: "read body: " + err.Error()})
		return
	}
	var lines []timedLine
	var blank int
	var decodeErr string
	if r.Header.Get("Content-Type") == wire.ContentType {
		lines, decodeErr = decodeFrames(body)
	} else {
		lines, blank = decodeTextLines(body)
	}

	ring, _ := n.Ring()
	// Group lines per owning node, preserving arrival order within each
	// owner (the per-entity workers there see the same order a direct
	// client would have produced).
	shares := make(map[string]*wire.Encoder)
	counts := make(map[string]int)
	order := []string{}
	for _, tl := range lines {
		key := n.cfg.Pipeline.RoutingKey(tl.line)
		owner := n.cfg.Self
		if key != "" {
			owner = ring.Owner(key)
		}
		enc := shares[owner]
		if enc == nil {
			enc = &wire.Encoder{}
			shares[owner] = enc
			order = append(order, owner)
		}
		enc.Add(tl.ts, tl.line)
		counts[owner]++
		if owner != n.cfg.Self {
			n.forwardedLines.Add(1)
		}
	}
	sort.Strings(order)

	path := "/ingest"
	if r.URL.Query().Get("wait") == "1" {
		path += "?wait=1"
	}
	// fanOut shares one body across members; ingest shares differ per
	// owner, so each share is dispatched individually (still concurrent).
	resp := clusterIngestResponse{Owners: make(map[string]ownerIngest, len(order))}
	type shareResult struct {
		owner string
		pr    peerResponse
	}
	resCh := make(chan shareResult, len(order))
	for _, owner := range order {
		go func(owner string) {
			frame := shares[owner].AppendFrame(nil)
			resCh <- shareResult{owner, n.do(owner, http.MethodPost, path, wire.ContentType, frame, nil)}
		}(owner)
	}
	for range order {
		sr := <-resCh
		oi := ownerIngest{Lines: counts[sr.owner]}
		switch {
		case sr.pr.err != nil:
			// Partition-style failure: the owner is unreachable. Nothing
			// was ingested there; the whole share is rejected and the
			// client hears 429, not a silent drop.
			oi.Rejected = oi.Lines
			oi.Error = "forward: " + sr.pr.err.Error()
			n.forwardErrors.Add(1)
		case sr.pr.status == http.StatusAccepted || sr.pr.status == http.StatusTooManyRequests:
			var pir peerIngestResponse
			if err := json.Unmarshal(sr.pr.body, &pir); err != nil {
				oi.Rejected = oi.Lines
				oi.Error = "forward: bad response: " + err.Error()
				n.forwardErrors.Add(1)
				break
			}
			oi.Accepted, oi.Rejected, oi.Error = pir.Accepted, pir.Rejected, pir.Error
			resp.Pending += pir.Pending
		default:
			oi.Rejected = oi.Lines
			oi.Error = "forward: unexpected status " + strconv.Itoa(sr.pr.status) + ": " + strings.TrimSpace(string(sr.pr.body))
			n.forwardErrors.Add(1)
		}
		resp.Accepted += oi.Accepted
		resp.Rejected += oi.Rejected
		if oi.Error != "" && resp.Error == "" {
			resp.Error = sr.owner + ": " + oi.Error
		}
		resp.Owners[sr.owner] = oi
	}
	// Blank lines are coordinator-local no-ops, counted accepted as in
	// single-node mode; a text decode never fails, but a malformed binary
	// frame rejects its undecodable remainder.
	resp.Accepted += blank
	if decodeErr != "" && resp.Error == "" {
		resp.Error = decodeErr
	}

	status := http.StatusAccepted
	if decodeErr != "" {
		status = http.StatusBadRequest
	}
	if resp.Rejected > 0 {
		status = http.StatusTooManyRequests
		w.Header().Set("Retry-After", "1")
	}
	writeJSON(w, status, resp)
}

// timedLine is one decoded ingest record.
type timedLine struct {
	ts   int64
	line string
}

// decodeTextLines splits a newline-delimited ingest body, honouring the
// optional "<unix-ms> " prefix exactly as the single-node endpoint does and
// stamping bare lines with the coordinator receive time (the forwarded
// frame carries the stamp, so the owner does not re-stamp on arrival).
func decodeTextLines(body []byte) (lines []timedLine, blank int) {
	now := time.Now().UnixMilli()
	sc := bufio.NewScanner(bytes.NewReader(body))
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		raw := sc.Text()
		if raw == "" {
			blank++
			continue
		}
		tl := timedLine{ts: now, line: raw}
		if sp := strings.IndexByte(raw, ' '); sp > 0 {
			if ts, err := strconv.ParseInt(raw[:sp], 10, 64); err == nil {
				tl = timedLine{ts: ts, line: raw[sp+1:]}
			}
		}
		lines = append(lines, tl)
	}
	return lines, blank
}

// decodeFrames drains every back-to-back binary frame in body. On a
// structural error the records decoded so far are returned along with the
// error text; the remainder is undecodable.
func decodeFrames(body []byte) (lines []timedLine, decodeErr string) {
	_, _, err := wire.EachFrameText(body, func(ts int64, line string) error {
		if line == "" {
			return nil
		}
		if ts == 0 {
			ts = time.Now().UnixMilli()
		}
		lines = append(lines, timedLine{ts: ts, line: line})
		return nil
	})
	if err != nil {
		return lines, "frame decode: " + err.Error()
	}
	return lines, ""
}

// writeJSON renders v with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}
