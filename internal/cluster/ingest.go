package cluster

import (
	"encoding/json"
	"io"
	"net/http"
	"slices"
	"strconv"
	"strings"
	"sync"
	"time"

	"github.com/datacron-project/datacron/internal/wire"
)

// ownerIngest is one owning node's share of a coordinated ingest batch.
type ownerIngest struct {
	Lines    int    `json:"lines"`
	Accepted int    `json:"accepted"`
	Rejected int    `json:"rejected"`
	Error    string `json:"error,omitempty"`
}

// clusterIngestResponse is the coordinator's POST /ingest body. Accepted
// and Rejected are sums over the per-owner sub-batches; unlike single-node
// mode, Accepted is NOT a resumable prefix offset of the original body —
// sub-batches land on different owners, so each owner reports its own exact
// prefix in Owners and a client that must avoid re-sending ingested lines
// resumes per owner. Pending sums the owners' queue depths.
type clusterIngestResponse struct {
	Accepted int                    `json:"accepted"`
	Rejected int                    `json:"rejected"`
	Pending  int64                  `json:"pending"`
	Error    string                 `json:"error,omitempty"`
	Owners   map[string]ownerIngest `json:"owners,omitempty"`
}

// peerIngestResponse mirrors the single-node ingestResponse for decoding
// sub-request results.
type peerIngestResponse struct {
	Accepted int    `json:"accepted"`
	Rejected int    `json:"rejected"`
	Pending  int64  `json:"pending"`
	Error    string `json:"error,omitempty"`
}

// ownerShare is one owning node's staged share of a coordinated ingest
// batch: a reusable record encoder and the framed bytes built from it.
type ownerShare struct {
	owner string
	enc   wire.Encoder
	frame []byte
}

// ingestScratch carries one coordinator ingest request's reusable buffers —
// body, decoded lines, per-owner shares — so steady-state re-framing
// performs no allocations (pinned by TestCoordinatorReframeAllocs). Shares
// keep their encoder and frame buffers across requests; reset only rewinds
// lengths.
type ingestScratch struct {
	body   []byte
	key    []byte // routing-key scratch, reused per line
	lines  []timedLine
	shares []*ownerShare // high-water owner capacity; first n are live
	n      int
}

var ingestScratchPool = sync.Pool{New: func() any { return new(ingestScratch) }}

// reset rewinds the scratch for reuse, keeping every buffer.
func (sc *ingestScratch) reset() {
	sc.body = sc.body[:0]
	sc.lines = sc.lines[:0]
	sc.n = 0
}

// share returns the live share for owner, reviving a recycled one (with its
// buffers) before allocating. Linear scan: cluster member counts are small,
// and it replaces two map lookups per line.
func (sc *ingestScratch) share(owner string) *ownerShare {
	for _, s := range sc.shares[:sc.n] {
		if s.owner == owner {
			return s
		}
	}
	var s *ownerShare
	if sc.n < len(sc.shares) {
		s = sc.shares[sc.n]
		s.owner = owner
	} else {
		s = &ownerShare{owner: owner}
		sc.shares = append(sc.shares, s)
	}
	sc.n++
	s.enc.Reset()
	s.frame = s.frame[:0]
	return s
}

// stageShares routes every decoded line to its owning node through the ring
// and re-frames each owner's share as one binary wire frame, preserving
// arrival order within each owner (the per-entity workers there see the
// same order a direct client would have produced). Shares come out sorted
// by owner for deterministic dispatch.
func (n *Node) stageShares(sc *ingestScratch) {
	ring, _ := n.Ring()
	for _, tl := range sc.lines {
		sc.key = n.cfg.Pipeline.AppendRoutingKey(sc.key[:0], tl.line)
		owner := n.cfg.Self
		if len(sc.key) > 0 {
			owner = ring.OwnerBytes(sc.key)
		}
		sc.share(owner).enc.Add(tl.ts, tl.line)
		if owner != n.cfg.Self {
			n.forwardedLines.Add(1)
		}
	}
	live := sc.shares[:sc.n]
	slices.SortFunc(live, func(a, b *ownerShare) int { return strings.Compare(a.owner, b.owner) })
	for _, s := range live {
		s.frame = s.enc.AppendFrame(s.frame[:0])
	}
}

// handleIngest is the coordinator ingest path: decode the batch (text lines
// or binary frames, same formats as the single-node endpoint), route every
// line to its owning node through the ring, re-frame each owner's share as
// one binary wire frame, and dispatch all shares concurrently — the node's
// own share in process, the rest as forwarded POST /ingest sub-requests.
//
// Backpressure propagates: any owner that sheds (429) or cannot be reached
// makes the coordinator respond 429 with Retry-After, never silently
// dropping the lines (the unreachable owner's share counts as rejected).
func (n *Node) handleIngest(w http.ResponseWriter, r *http.Request) {
	sc := ingestScratchPool.Get().(*ingestScratch)
	// Safe to recycle at return: the dispatch loop below joins every share
	// goroutine before the handler exits, so nothing aliases the buffers.
	defer func() { sc.reset(); ingestScratchPool.Put(sc) }()
	var err error
	sc.body, err = readAllInto(sc.body[:0], io.LimitReader(r.Body, 256<<20))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, clusterIngestResponse{Error: "read body: " + err.Error()})
		return
	}
	var blank int
	var decodeErr string
	if r.Header.Get("Content-Type") == wire.ContentType {
		sc.lines, decodeErr = decodeFrames(sc.lines[:0], sc.body)
	} else {
		sc.lines, blank = decodeTextLines(sc.lines[:0], sc.body)
	}

	n.stageShares(sc)

	path := "/ingest"
	if r.URL.Query().Get("wait") == "1" {
		path += "?wait=1"
	}
	// fanOut shares one body across members; ingest shares differ per
	// owner, so each share is dispatched individually (still concurrent).
	resp := clusterIngestResponse{Owners: make(map[string]ownerIngest, sc.n)}
	type shareResult struct {
		owner string
		lines int
		pr    peerResponse
	}
	resCh := make(chan shareResult, sc.n)
	for _, s := range sc.shares[:sc.n] {
		go func(owner string, lines int, frame []byte) {
			resCh <- shareResult{owner, lines, n.do(owner, http.MethodPost, path, wire.ContentType, frame, nil)}
		}(s.owner, s.enc.Count(), s.frame)
	}
	for i := 0; i < sc.n; i++ {
		sr := <-resCh
		oi := ownerIngest{Lines: sr.lines}
		switch {
		case sr.pr.err != nil:
			// Partition-style failure: the owner is unreachable. Nothing
			// was ingested there; the whole share is rejected and the
			// client hears 429, not a silent drop.
			oi.Rejected = oi.Lines
			oi.Error = "forward: " + sr.pr.err.Error()
			n.forwardErrors.Add(1)
		case sr.pr.status == http.StatusAccepted || sr.pr.status == http.StatusTooManyRequests:
			var pir peerIngestResponse
			if err := json.Unmarshal(sr.pr.body, &pir); err != nil {
				oi.Rejected = oi.Lines
				oi.Error = "forward: bad response: " + err.Error()
				n.forwardErrors.Add(1)
				break
			}
			oi.Accepted, oi.Rejected, oi.Error = pir.Accepted, pir.Rejected, pir.Error
			resp.Pending += pir.Pending
		default:
			oi.Rejected = oi.Lines
			oi.Error = "forward: unexpected status " + strconv.Itoa(sr.pr.status) + ": " + strings.TrimSpace(string(sr.pr.body))
			n.forwardErrors.Add(1)
		}
		resp.Accepted += oi.Accepted
		resp.Rejected += oi.Rejected
		if oi.Error != "" && resp.Error == "" {
			resp.Error = sr.owner + ": " + oi.Error
		}
		resp.Owners[sr.owner] = oi
	}
	// Blank lines are coordinator-local no-ops, counted accepted as in
	// single-node mode; a text decode never fails, but a malformed binary
	// frame rejects its undecodable remainder.
	resp.Accepted += blank
	if decodeErr != "" && resp.Error == "" {
		resp.Error = decodeErr
	}

	status := http.StatusAccepted
	if decodeErr != "" {
		status = http.StatusBadRequest
	}
	if resp.Rejected > 0 {
		status = http.StatusTooManyRequests
		w.Header().Set("Retry-After", "1")
	}
	writeJSON(w, status, resp)
}

// timedLine is one decoded ingest record.
type timedLine struct {
	ts   int64
	line string
}

// readAllInto drains r into dst's spare capacity, growing only when full —
// io.ReadAll with a caller-owned (poolable) buffer.
func readAllInto(dst []byte, r io.Reader) ([]byte, error) {
	for {
		if len(dst) == cap(dst) {
			dst = append(dst, 0)[:len(dst)]
		}
		n, err := r.Read(dst[len(dst):cap(dst)])
		dst = dst[:len(dst)+n]
		if err == io.EOF {
			return dst, nil
		}
		if err != nil {
			return dst, err
		}
	}
}

// decodeTextLines appends a newline-delimited ingest body's records to dst,
// honouring the optional "<unix-ms> " prefix exactly as the single-node
// endpoint does and stamping bare lines with the coordinator receive time
// (the forwarded frame carries the stamp, so the owner does not re-stamp on
// arrival). The whole body is converted to a string once and every line
// aliases it — one allocation per request, none per line.
func decodeTextLines(dst []timedLine, body []byte) (lines []timedLine, blank int) {
	now := time.Now().UnixMilli()
	text := string(body)
	lines = dst
	for len(text) > 0 {
		raw := text
		if i := strings.IndexByte(text, '\n'); i >= 0 {
			raw = text[:i]
			text = text[i+1:]
		} else {
			text = ""
		}
		if len(raw) > 0 && raw[len(raw)-1] == '\r' {
			raw = raw[:len(raw)-1]
		}
		if raw == "" {
			blank++
			continue
		}
		tl := timedLine{ts: now, line: raw}
		if sp := strings.IndexByte(raw, ' '); sp > 0 {
			if ts, err := strconv.ParseInt(raw[:sp], 10, 64); err == nil {
				tl = timedLine{ts: ts, line: raw[sp+1:]}
			}
		}
		lines = append(lines, tl)
	}
	return lines, blank
}

// decodeFrames appends every back-to-back binary frame's records in body to
// dst. On a structural error the records decoded so far are returned along
// with the error text; the remainder is undecodable.
func decodeFrames(dst []timedLine, body []byte) (lines []timedLine, decodeErr string) {
	lines = dst
	_, _, err := wire.EachFrameText(body, func(ts int64, line string) error {
		if line == "" {
			return nil
		}
		if ts == 0 {
			ts = time.Now().UnixMilli()
		}
		lines = append(lines, timedLine{ts: ts, line: line})
		return nil
	})
	if err != nil {
		return lines, "frame decode: " + err.Error()
	}
	return lines, ""
}

// writeJSON renders v with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}
