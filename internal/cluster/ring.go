// Package cluster lifts the single-process entity routing of PR 1 onto the
// network: N datacron-serve nodes each own a consistent-hash slice of the
// entity-key space. Ingest lines are forwarded to the owning node over the
// internal/wire binary frame, reads scatter-gather across the membership,
// and join/leave relocates a hash range by shipping sealed immutable
// segments plus a head-replay tail (DESIGN.md §14).
package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
)

// DefaultVNodes is the virtual-node count per member: enough that the
// expected imbalance between members stays within a few percent, small
// enough that ring construction is trivially cheap on every membership
// change.
const DefaultVNodes = 64

// Ring is an immutable consistent-hash ring over the cluster membership.
// Every key maps to exactly one member (Owner); membership changes build a
// new ring (WithJoined / WithLeft) rather than mutating, so a ring snapshot
// can be read without locks. Construction is a pure function of the sorted
// member list and the vnode count — two processes given the same inputs
// agree on every ownership decision, which is what lets nodes route
// independently without a coordination service.
type Ring struct {
	members []string // sorted, unique
	vnodes  int
	points  []ringPoint // sorted by (hash, member, index)
}

// ringPoint is one virtual node: the hash of "member#i".
type ringPoint struct {
	hash   uint64
	member string
}

// NewRing builds a ring over members (order-insensitive; duplicates
// collapse). vnodes <= 0 uses DefaultVNodes. An empty membership yields a
// ring whose Owner returns "".
func NewRing(members []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	uniq := make([]string, 0, len(members))
	seen := make(map[string]bool, len(members))
	for _, m := range members {
		if m != "" && !seen[m] {
			seen[m] = true
			uniq = append(uniq, m)
		}
	}
	sort.Strings(uniq)
	r := &Ring{members: uniq, vnodes: vnodes, points: make([]ringPoint, 0, len(uniq)*vnodes)}
	for _, m := range uniq {
		for i := 0; i < vnodes; i++ {
			r.points = append(r.points, ringPoint{hash: hashKey(m + "#" + strconv.Itoa(i)), member: m})
		}
	}
	// Ties broken by member name so equal-hash collisions cannot make two
	// processes disagree on an owner.
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].member < r.points[j].member
	})
	return r
}

// hashKey is FNV-1a/64 with a murmur-style finalizer — stable across
// processes and architectures. The finalizer matters: raw FNV of
// near-identical strings ("host:9000#0", "host:9000#1", ...) clusters in
// the high bits that the ring's ordering depends on, producing multi-x arc
// imbalance; fmix64's avalanche restores uniform vnode placement. Inlined
// FNV (rather than hash/fnv) and generic over string/[]byte so hashing a
// scratch-buffer key never copies it; TestRingOwnershipGolden pins the
// values against the hash/fnv-derived originals.
func hashKey[T ~string | ~[]byte](s T) uint64 {
	x := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		x = (x ^ uint64(s[i])) * 1099511628211
	}
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// Owner returns the member owning key: the first virtual node at or after
// the key's hash, wrapping. "" on an empty ring.
func (r *Ring) Owner(key string) string { return r.owner(hashKey(key)) }

// OwnerBytes is Owner for a key held in a scratch buffer, avoiding the
// string conversion. OwnerBytes(k) == Owner(string(k)) for every k.
func (r *Ring) OwnerBytes(key []byte) string { return r.owner(hashKey(key)) }

func (r *Ring) owner(h uint64) string {
	if len(r.points) == 0 {
		return ""
	}
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].member
}

// Members returns the sorted membership (a copy).
func (r *Ring) Members() []string {
	return append([]string(nil), r.members...)
}

// Has reports whether m is a member.
func (r *Ring) Has(m string) bool {
	i := sort.SearchStrings(r.members, m)
	return i < len(r.members) && r.members[i] == m
}

// Size returns the member count.
func (r *Ring) Size() int { return len(r.members) }

// VNodes returns the per-member virtual-node count.
func (r *Ring) VNodes() int { return r.vnodes }

// WithJoined returns a new ring with m added (no-op copy if present).
func (r *Ring) WithJoined(m string) *Ring {
	return NewRing(append(r.Members(), m), r.vnodes)
}

// WithLeft returns a new ring with m removed (no-op copy if absent).
func (r *Ring) WithLeft(m string) *Ring {
	ms := r.Members()
	out := ms[:0]
	for _, x := range ms {
		if x != m {
			out = append(out, x)
		}
	}
	return NewRing(out, r.vnodes)
}

// Fingerprint is a stable digest of the ring's ownership function — two
// rings with equal fingerprints route every key identically. Used by the
// membership protocol to assert agreement across nodes.
func (r *Ring) Fingerprint() uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "v%d", r.vnodes)
	for _, m := range r.members {
		h.Write([]byte{0})
		h.Write([]byte(m))
	}
	return h.Sum64()
}
