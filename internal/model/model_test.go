package model

import (
	"testing"
	"time"

	"github.com/datacron-project/datacron/internal/geo"
)

func TestPositionTime(t *testing.T) {
	p := Position{TS: 1489104000000} // 2017-03-10 00:00:00 UTC
	got := p.Time()
	want := time.Date(2017, 3, 10, 0, 0, 0, 0, time.UTC)
	if !got.Equal(want) {
		t.Errorf("Time() = %v, want %v", got, want)
	}
}

func TestDomainString(t *testing.T) {
	if Maritime.String() != "maritime" || Aviation.String() != "aviation" {
		t.Error("domain strings")
	}
	if Domain(9).String() != "domain(9)" {
		t.Errorf("unknown domain: %s", Domain(9))
	}
}

func TestNavStatusString(t *testing.T) {
	cases := map[NavStatus]string{
		StatusUnknown: "unknown", StatusUnderway: "underway", StatusAnchored: "anchored",
		StatusMoored: "moored", StatusFishing: "fishing", StatusClimbing: "climbing",
		StatusCruising: "cruising", StatusDescending: "descending", NavStatus(99): "unknown",
	}
	for s, want := range cases {
		if s.String() != want {
			t.Errorf("%d.String() = %q, want %q", s, s.String(), want)
		}
	}
}

func TestEventOverlaps(t *testing.T) {
	base := Event{Type: "loitering", Entity: "V1", StartTS: 100, EndTS: 200}
	tests := []struct {
		name string
		o    Event
		want bool
	}{
		{"identical", base, true},
		{"overlap left", Event{Type: "loitering", Entity: "V1", StartTS: 50, EndTS: 150}, true},
		{"overlap right", Event{Type: "loitering", Entity: "V1", StartTS: 150, EndTS: 250}, true},
		{"touching", Event{Type: "loitering", Entity: "V1", StartTS: 200, EndTS: 300}, true},
		{"disjoint", Event{Type: "loitering", Entity: "V1", StartTS: 201, EndTS: 300}, false},
		{"other entity", Event{Type: "loitering", Entity: "V2", StartTS: 100, EndTS: 200}, false},
		{"other type", Event{Type: "rendezvous", Entity: "V1", StartTS: 100, EndTS: 200}, false},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := base.Overlaps(tc.o); got != tc.want {
				t.Errorf("Overlaps = %v, want %v", got, tc.want)
			}
		})
	}
}

func TestEventStringAndDuration(t *testing.T) {
	e := Event{Type: "rendezvous", Entity: "V1", Other: "V2", StartTS: 0, EndTS: 60000}
	if e.Duration() != time.Minute {
		t.Errorf("Duration = %v", e.Duration())
	}
	if s := e.String(); s == "" {
		t.Error("empty String()")
	}
	solo := Event{Type: "loitering", Entity: "V1"}
	if s := solo.String(); s == "" {
		t.Error("empty String() for single-entity event")
	}
}

func mkTraj(ts ...int64) *Trajectory {
	tr := &Trajectory{EntityID: "V1"}
	for i, t := range ts {
		tr.Points = append(tr.Points, Position{
			EntityID: "V1", TS: t,
			Pt: geo.Pt(20+float64(i)*0.01, 37),
		})
	}
	return tr
}

func TestTrajectorySortDedup(t *testing.T) {
	tr := mkTraj(300, 100, 200, 100)
	tr.Sort()
	for i := 1; i < tr.Len(); i++ {
		if tr.Points[i].TS < tr.Points[i-1].TS {
			t.Fatal("not sorted")
		}
	}
	tr.Dedup()
	if tr.Len() != 3 {
		t.Errorf("Dedup left %d points, want 3", tr.Len())
	}
	// Dedup keeps first occurrence: the point with TS=100 that sorted first.
	empty := &Trajectory{}
	empty.Sort()
	empty.Dedup() // must not panic
}

func TestTrajectoryAt(t *testing.T) {
	tr := &Trajectory{EntityID: "V1", Points: []Position{
		{TS: 0, Pt: geo.Pt(20, 37), SpeedMS: 5, CourseDeg: 90},
		{TS: 10000, Pt: geo.Pt(20.01, 37), SpeedMS: 7, CourseDeg: 90},
	}}
	mid, ok := tr.At(5000)
	if !ok {
		t.Fatal("At failed")
	}
	if mid.TS != 5000 {
		t.Errorf("TS = %d", mid.TS)
	}
	if mid.SpeedMS < 5.9 || mid.SpeedMS > 6.1 {
		t.Errorf("interpolated speed = %f, want 6", mid.SpeedMS)
	}
	wantLon := 20.005
	if mid.Pt.Lon < wantLon-0.0005 || mid.Pt.Lon > wantLon+0.0005 {
		t.Errorf("interpolated lon = %f, want ≈%f", mid.Pt.Lon, wantLon)
	}
	// Clamping.
	if p, _ := tr.At(-100); p.TS != 0 {
		t.Error("before-start should clamp to first point")
	}
	if p, _ := tr.At(99999); p.TS != 10000 {
		t.Error("after-end should clamp to last point")
	}
	if _, ok := (&Trajectory{}).At(0); ok {
		t.Error("empty trajectory At should report !ok")
	}
}

func TestTrajectoryAtCourseWrap(t *testing.T) {
	tr := &Trajectory{Points: []Position{
		{TS: 0, Pt: geo.Pt(20, 37), CourseDeg: 350},
		{TS: 1000, Pt: geo.Pt(20.001, 37.001), CourseDeg: 10},
	}}
	mid, _ := tr.At(500)
	// Interpolating 350°→10° through north should give ≈0°, not 180°.
	if mid.CourseDeg > 20 && mid.CourseDeg < 340 {
		t.Errorf("course interpolation crossed the long way: %f", mid.CourseDeg)
	}
}

func TestTrajectoryLengthAndSpan(t *testing.T) {
	tr := &Trajectory{Points: []Position{
		{TS: 0, Pt: geo.Pt(20, 37)},
		{TS: 60000, Pt: geo.Pt(20.1, 37)},
		{TS: 120000, Pt: geo.Pt(20.2, 37)},
	}}
	d := tr.LengthM()
	single := geo.Haversine(geo.Pt(20, 37), geo.Pt(20.1, 37))
	if d < 2*single*0.99 || d > 2*single*1.01 {
		t.Errorf("LengthM = %f, want ≈%f", d, 2*single)
	}
	if tr.TimeSpan() != 2*time.Minute {
		t.Errorf("TimeSpan = %v", tr.TimeSpan())
	}
}

func TestTrajectorySlice(t *testing.T) {
	tr := mkTraj(0, 1000, 2000, 3000, 4000)
	s := tr.Slice(1000, 3000)
	if s.Len() != 3 {
		t.Errorf("Slice len = %d, want 3", s.Len())
	}
	if s.Points[0].TS != 1000 || s.Points[2].TS != 3000 {
		t.Errorf("Slice bounds wrong: %v", s.Points)
	}
	if tr.Slice(9000, 10000).Len() != 0 {
		t.Error("out-of-range slice should be empty")
	}
}

func TestTrajectoryResample(t *testing.T) {
	tr := mkTraj(0, 10000, 20000)
	rs := tr.Resample(5 * time.Second)
	if rs.Len() != 5 {
		t.Errorf("Resample len = %d, want 5", rs.Len())
	}
	for i := 1; i < rs.Len(); i++ {
		if rs.Points[i].TS-rs.Points[i-1].TS != 5000 {
			t.Fatal("uneven resample step")
		}
	}
	if (&Trajectory{}).Resample(time.Second).Len() != 0 {
		t.Error("empty resample should be empty")
	}
	if tr.Resample(0).Len() != 0 {
		t.Error("non-positive step should yield empty")
	}
}

func TestGroupByEntity(t *testing.T) {
	positions := []Position{
		{EntityID: "A", TS: 2000}, {EntityID: "B", TS: 500}, {EntityID: "A", TS: 1000},
	}
	m := GroupByEntity(positions)
	if len(m) != 2 {
		t.Fatalf("got %d entities", len(m))
	}
	a := m["A"]
	if a.Len() != 2 || a.Points[0].TS != 1000 {
		t.Errorf("A not sorted: %v", a.Points)
	}
}

func TestTrajectoryClone(t *testing.T) {
	tr := mkTraj(0, 1000)
	cl := tr.Clone()
	cl.Points[0].TS = 999
	if tr.Points[0].TS == 999 {
		t.Error("Clone shares backing array")
	}
}
