// Package model defines the common record model shared by every datAcron
// component: surveillance positions, moving-entity identities, trajectories
// and detected events. The "data transformation" layer of the paper converts
// wire formats (AIS, ADS-B) into these records and these records into RDF.
package model

import (
	"fmt"
	"time"

	"github.com/datacron-project/datacron/internal/geo"
)

// Domain distinguishes the two datAcron use cases: maritime (2D) and
// aviation (3D).
type Domain uint8

// Supported domains.
const (
	Maritime Domain = iota
	Aviation
)

// String implements fmt.Stringer.
func (d Domain) String() string {
	switch d {
	case Maritime:
		return "maritime"
	case Aviation:
		return "aviation"
	default:
		return fmt.Sprintf("domain(%d)", uint8(d))
	}
}

// NavStatus encodes the navigational status reported by an entity, a
// simplified union of the AIS navigation status and flight phase.
type NavStatus uint8

// Navigational statuses.
const (
	StatusUnknown NavStatus = iota
	StatusUnderway
	StatusAnchored
	StatusMoored
	StatusFishing
	StatusClimbing
	StatusCruising
	StatusDescending
)

// String implements fmt.Stringer.
func (s NavStatus) String() string {
	switch s {
	case StatusUnderway:
		return "underway"
	case StatusAnchored:
		return "anchored"
	case StatusMoored:
		return "moored"
	case StatusFishing:
		return "fishing"
	case StatusClimbing:
		return "climbing"
	case StatusCruising:
		return "cruising"
	case StatusDescending:
		return "descending"
	default:
		return "unknown"
	}
}

// Position is one timestamped surveillance report for a moving entity.
// Timestamps are Unix milliseconds UTC: they are compact, trivially ordered,
// and match the paper's millisecond latency vocabulary.
type Position struct {
	EntityID   string    // MMSI for vessels, ICAO24 for aircraft
	Domain     Domain    // maritime or aviation
	TS         int64     // Unix milliseconds
	Pt         geo.Point // lon/lat[/alt]
	SpeedMS    float64   // speed over ground, m/s
	CourseDeg  float64   // course over ground, degrees from north
	VertRateMS float64   // vertical rate, m/s (aviation; 0 for vessels)
	Status     NavStatus
}

// Time returns the timestamp as a time.Time in UTC.
func (p Position) Time() time.Time { return time.UnixMilli(p.TS).UTC() }

// String implements fmt.Stringer.
func (p Position) String() string {
	return fmt.Sprintf("%s@%s %s %.1fm/s %.0f°", p.EntityID, p.Time().Format(time.RFC3339), p.Pt, p.SpeedMS, p.CourseDeg)
}

// Entity describes the static (voyage-level) properties of a moving entity,
// reported out-of-band from positions (AIS message 5, flight plans).
type Entity struct {
	ID       string // MMSI / ICAO24
	Domain   Domain
	Name     string // ship name or callsign
	Callsign string
	Type     string // e.g. "cargo", "tanker", "fishing", "A320"
	LengthM  float64
	Dest     string // declared destination (port / aerodrome)
}

// Event is a detected or scripted occurrence involving one or two entities.
// Ground-truth scripted events from the synthetic world and events detected
// by the CER engine share this shape so they can be compared directly.
type Event struct {
	Type     string    // e.g. "rendezvous", "loitering", "areaEntry", "hotspot"
	Entity   string    // primary entity
	Other    string    // secondary entity, if any ("" otherwise)
	StartTS  int64     // Unix milliseconds
	EndTS    int64     // Unix milliseconds (== StartTS for instantaneous)
	Where    geo.Point // representative location
	Area     string    // named area involved, if any
	DetectTS int64     // wall-clock-equivalent time the event was emitted (for latency)
}

// Duration returns the event duration.
func (e Event) Duration() time.Duration {
	return time.Duration(e.EndTS-e.StartTS) * time.Millisecond
}

// Overlaps reports whether two events overlap in time and concern the same
// primary entity and type; used to score detections against ground truth.
func (e Event) Overlaps(o Event) bool {
	return e.Type == o.Type && e.Entity == o.Entity &&
		e.StartTS <= o.EndTS && o.StartTS <= e.EndTS
}

// String implements fmt.Stringer.
func (e Event) String() string {
	if e.Other != "" {
		return fmt.Sprintf("%s(%s,%s) %s..%s", e.Type, e.Entity, e.Other,
			time.UnixMilli(e.StartTS).UTC().Format("15:04:05"), time.UnixMilli(e.EndTS).UTC().Format("15:04:05"))
	}
	return fmt.Sprintf("%s(%s) %s..%s", e.Type, e.Entity,
		time.UnixMilli(e.StartTS).UTC().Format("15:04:05"), time.UnixMilli(e.EndTS).UTC().Format("15:04:05"))
}
