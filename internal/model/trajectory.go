package model

import (
	"sort"
	"time"

	"github.com/datacron-project/datacron/internal/geo"
)

// Trajectory is the time-ordered sequence of positions of one entity.
// Methods never mutate the receiver unless the name says so (Sort, Dedup).
type Trajectory struct {
	EntityID string
	Domain   Domain
	Points   []Position
}

// Len returns the number of points.
func (t *Trajectory) Len() int { return len(t.Points) }

// Sort orders points by timestamp (stable, so equal-timestamp duplicates
// keep their arrival order for Dedup).
func (t *Trajectory) Sort() {
	sort.SliceStable(t.Points, func(i, j int) bool { return t.Points[i].TS < t.Points[j].TS })
}

// Dedup removes points with duplicate timestamps, keeping the first of each
// run. The trajectory must already be sorted.
func (t *Trajectory) Dedup() {
	if len(t.Points) < 2 {
		return
	}
	out := t.Points[:1]
	for _, p := range t.Points[1:] {
		if p.TS != out[len(out)-1].TS {
			out = append(out, p)
		}
	}
	t.Points = out
}

// Start returns the first timestamp, or 0 when empty.
func (t *Trajectory) Start() int64 {
	if len(t.Points) == 0 {
		return 0
	}
	return t.Points[0].TS
}

// End returns the last timestamp, or 0 when empty.
func (t *Trajectory) End() int64 {
	if len(t.Points) == 0 {
		return 0
	}
	return t.Points[len(t.Points)-1].TS
}

// TimeSpan returns the trajectory duration.
func (t *Trajectory) TimeSpan() time.Duration {
	return time.Duration(t.End()-t.Start()) * time.Millisecond
}

// LengthM returns the travelled distance in metres (3D for aviation).
func (t *Trajectory) LengthM() float64 {
	var sum float64
	for i := 1; i < len(t.Points); i++ {
		sum += geo.Dist3D(t.Points[i-1].Pt, t.Points[i].Pt)
	}
	return sum
}

// BBox returns the bounding box of all points.
func (t *Trajectory) BBox() geo.BBox {
	b := geo.EmptyBBox()
	for _, p := range t.Points {
		b = b.Extend(p.Pt)
	}
	return b
}

// At returns the interpolated position at timestamp ts. Outside the time
// span the nearest endpoint is returned. ok is false for empty trajectories.
func (t *Trajectory) At(ts int64) (pos Position, ok bool) {
	n := len(t.Points)
	if n == 0 {
		return Position{}, false
	}
	if ts <= t.Points[0].TS {
		return t.Points[0], true
	}
	if ts >= t.Points[n-1].TS {
		return t.Points[n-1], true
	}
	// Binary search for the segment containing ts.
	i := sort.Search(n, func(i int) bool { return t.Points[i].TS >= ts })
	a, b := t.Points[i-1], t.Points[i]
	if b.TS == a.TS {
		return a, true
	}
	f := float64(ts-a.TS) / float64(b.TS-a.TS)
	out := a
	out.TS = ts
	out.Pt = geo.Interpolate(a.Pt, b.Pt, f)
	out.SpeedMS = a.SpeedMS + f*(b.SpeedMS-a.SpeedMS)
	out.CourseDeg = a.CourseDeg + f*geo.AngleDiff(a.CourseDeg, b.CourseDeg)
	if out.CourseDeg < 0 {
		out.CourseDeg += 360
	}
	return out, true
}

// Slice returns the sub-trajectory with from ≤ TS ≤ to (points shared, not
// copied).
func (t *Trajectory) Slice(from, to int64) *Trajectory {
	lo := sort.Search(len(t.Points), func(i int) bool { return t.Points[i].TS >= from })
	hi := sort.Search(len(t.Points), func(i int) bool { return t.Points[i].TS > to })
	return &Trajectory{EntityID: t.EntityID, Domain: t.Domain, Points: t.Points[lo:hi]}
}

// Clone returns a deep copy.
func (t *Trajectory) Clone() *Trajectory {
	pts := make([]Position, len(t.Points))
	copy(pts, t.Points)
	return &Trajectory{EntityID: t.EntityID, Domain: t.Domain, Points: pts}
}

// Resample returns a new trajectory sampled every step from Start to End
// using At interpolation. Returns an empty trajectory when t has <2 points.
func (t *Trajectory) Resample(step time.Duration) *Trajectory {
	out := &Trajectory{EntityID: t.EntityID, Domain: t.Domain}
	if len(t.Points) < 2 || step <= 0 {
		return out
	}
	stepMS := step.Milliseconds()
	for ts := t.Start(); ts <= t.End(); ts += stepMS {
		p, _ := t.At(ts)
		out.Points = append(out.Points, p)
	}
	return out
}

// GroupByEntity splits a flat position slice into per-entity trajectories,
// sorted by time. The input order is not assumed.
func GroupByEntity(positions []Position) map[string]*Trajectory {
	out := make(map[string]*Trajectory)
	for _, p := range positions {
		tr, ok := out[p.EntityID]
		if !ok {
			tr = &Trajectory{EntityID: p.EntityID, Domain: p.Domain}
			out[p.EntityID] = tr
		}
		tr.Points = append(tr.Points, p)
	}
	for _, tr := range out {
		tr.Sort()
	}
	return out
}
