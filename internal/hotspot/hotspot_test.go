package hotspot

import (
	"testing"
	"time"

	"github.com/datacron-project/datacron/internal/geo"
	"github.com/datacron-project/datacron/internal/synth"
)

var box = geo.NewBBox(22, 34, 30, 42)

func TestDensityGridCounts(t *testing.T) {
	d := NewDensityGrid(geo.NewGrid(box, 8, 8))
	d.Add(geo.Pt(23, 35))
	d.Add(geo.Pt(23, 35))
	d.AddWeighted(geo.Pt(29, 41), 3)
	if d.Total() != 5 {
		t.Errorf("Total = %f", d.Total())
	}
	if d.Max() != 3 {
		t.Errorf("Max = %f", d.Max())
	}
}

func TestGiStarFindsCluster(t *testing.T) {
	d := NewDensityGrid(geo.NewGrid(box, 16, 16))
	// Uniform background.
	for i := 0; i < 16; i++ {
		for j := 0; j < 16; j++ {
			d.AddWeighted(d.Grid.CellCenter(i*16+j), 1)
		}
	}
	// Strong cluster near (25, 38).
	hotPt := geo.Pt(25, 38)
	for i := 0; i < 200; i++ {
		d.Add(hotPt)
	}
	spots := d.Hotspots(2.0)
	if len(spots) == 0 {
		t.Fatal("no hotspots found")
	}
	// Gi* is a neighbourhood statistic: the peak cell and its neighbours
	// share the top score. The peak must be flagged, and every flagged
	// cell must be the peak or one of its 8 neighbours.
	peak := d.Grid.CellID(hotPt)
	neighbourhood := map[int]bool{peak: true}
	for _, n := range d.Grid.Neighbors(peak) {
		neighbourhood[n] = true
	}
	foundPeak := false
	for _, s := range spots {
		if s.Cell == peak {
			foundPeak = true
		}
		if !neighbourhood[s.Cell] {
			t.Errorf("spurious hotspot at cell %d (z=%f)", s.Cell, s.Z)
		}
	}
	if !foundPeak {
		t.Error("peak cell not flagged")
	}
	// Empty grid: no NaNs, no hotspots.
	empty := NewDensityGrid(geo.NewGrid(box, 4, 4))
	if len(empty.Hotspots(2)) != 0 {
		t.Error("empty grid produced hotspots")
	}
	for _, z := range empty.GiStar() {
		if z != 0 {
			t.Fatal("empty grid non-zero z")
		}
	}
}

func TestOccupancyWindows(t *testing.T) {
	o := NewOccupancy(60_000)
	o.Observe("S1", "A", 10_000)
	o.Observe("S1", "A", 20_000) // duplicate entity, same window
	o.Observe("S1", "B", 30_000)
	o.Observe("S1", "A", 70_000) // next window
	o.Observe("S2", "A", 10_000)
	counts := o.Counts()
	if len(counts) != 3 {
		t.Fatalf("counts = %+v", counts)
	}
	// Window 0, S1: 2 distinct entities.
	if counts[0].Area != "S1" || counts[0].Entities != 2 {
		t.Errorf("counts[0] = %+v", counts[0])
	}
}

func TestCongestionEventsMergeWindows(t *testing.T) {
	o := NewOccupancy(60_000)
	// S1 congested in windows 0 and 1 (3 entities each), then clear.
	for w := int64(0); w < 2; w++ {
		for _, e := range []string{"a", "b", "c"} {
			o.Observe("S1", e, w*60_000+1000)
		}
	}
	o.Observe("S1", "a", 3*60_000)
	evs := o.CongestionEvents(3)
	if len(evs) != 1 {
		t.Fatalf("events = %+v", evs)
	}
	if evs[0].StartTS != 0 || evs[0].EndTS != 120_000 {
		t.Errorf("merged interval = %d..%d", evs[0].StartTS, evs[0].EndTS)
	}
	if evs[0].Area != "S1" || evs[0].Type != "hotspot" {
		t.Errorf("event = %+v", evs[0])
	}
}

func TestFlowTop(t *testing.T) {
	f := NewFlow()
	// entity e1: A → B → C; e2: A → B.
	f.Observe("e1", "A")
	f.Observe("e1", "")
	f.Observe("e1", "B")
	f.Observe("e1", "C")
	f.Observe("e2", "A")
	f.Observe("e2", "B")
	top := f.Top(10)
	if len(top) != 2 {
		t.Fatalf("flows = %+v", top)
	}
	if top[0].From != "A" || top[0].To != "B" || top[0].Count != 2 {
		t.Errorf("top flow = %+v", top[0])
	}
	if got := f.Top(1); len(got) != 1 {
		t.Error("Top(1) truncation")
	}
	// Re-entering the same area is not a transition.
	f2 := NewFlow()
	f2.Observe("e", "A")
	f2.Observe("e", "A")
	if len(f2.Top(0)) != 0 {
		t.Error("self transition counted")
	}
}

func TestHotspotDetectionOnAviationWorld(t *testing.T) {
	sc := synth.GenAviation(synth.AviationConfig{Seed: 19, Flights: 40, Duration: 2 * time.Hour, HoldEpisodes: 1})
	grid := synth.SectorGrid()
	occ := NewOccupancy((10 * time.Minute).Milliseconds())
	for _, p := range sc.Positions {
		occ.Observe(synth.SectorName(grid.CellID(p.Pt)), p.EntityID, p.TS)
	}
	// Threshold: the scripted hold should push its sector above typical
	// occupancy. Find a threshold that flags the truth sector.
	truth := sc.EventsOfType("hotspot")
	if len(truth) != 1 {
		t.Fatalf("scripted hotspots = %d", len(truth))
	}
	evs := occ.CongestionEvents(8)
	found := false
	for _, ev := range evs {
		if ev.Area == truth[0].Area &&
			ev.StartTS <= truth[0].EndTS && truth[0].StartTS <= ev.EndTS+10*60000 {
			found = true
		}
	}
	if !found {
		t.Errorf("scripted hold sector %s not flagged; events: %+v", truth[0].Area, evs)
	}
}
