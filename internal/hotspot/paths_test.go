package hotspot

import (
	"testing"
	"time"

	"github.com/datacron-project/datacron/internal/geo"
	"github.com/datacron-project/datacron/internal/model"
	"github.com/datacron-project/datacron/internal/synth"
)

func eastTrack(id string, n int) *model.Trajectory {
	tr := &model.Trajectory{EntityID: id}
	pt := geo.Pt(23, 37)
	for i := 0; i < n; i++ {
		tr.Points = append(tr.Points, model.Position{
			EntityID: id, TS: int64(i) * 60000, Pt: pt, SpeedMS: 8, CourseDeg: 90,
		})
		pt = geo.Destination(pt, 90, 8*60)
	}
	return tr
}

func TestPathDensityEdges(t *testing.T) {
	pd := NewPathDensity(geo.NewGrid(box, 64, 64))
	for v := 0; v < 5; v++ {
		pd.AddTrajectory(eastTrack("V", 120))
	}
	edges := pd.TopEdges(10)
	if len(edges) == 0 {
		t.Fatal("no edges")
	}
	// No edge of an eastbound track heads west (same-longitude edges are
	// row transitions from the great circle's slight southward drift).
	for _, e := range edges {
		if e.To.Lon < e.From.Lon {
			t.Errorf("edge heads west: %+v", e)
		}
		if e.Count != 5 {
			t.Errorf("edge count = %d, want 5 (one per vessel)", e.Count)
		}
	}
}

func TestPathDensityIgnoresPausesAndIntraCell(t *testing.T) {
	pd := NewPathDensity(geo.NewGrid(box, 16, 16))
	tr := eastTrack("V", 3)
	// Append a pause at the same place.
	last := tr.Points[len(tr.Points)-1]
	last.TS += 60000
	last.SpeedMS = 0.1
	tr.Points = append(tr.Points, last)
	pd.AddTrajectory(tr)
	for _, e := range pd.TopEdges(0) {
		if e.FromCell == e.ToCell {
			t.Error("intra-cell edge recorded")
		}
	}
}

func TestCorridorTracesLane(t *testing.T) {
	pd := NewPathDensity(geo.NewGrid(box, 64, 64))
	for v := 0; v < 8; v++ {
		pd.AddTrajectory(eastTrack("V", 180))
	}
	path := pd.Corridor(4, 32)
	if len(path) < 3 {
		t.Fatalf("corridor too short: %v", path)
	}
	// Eastbound corridor: cell-centre longitudes never decrease (row
	// transitions from the great circle's southward drift keep the same
	// column) and the corridor makes overall eastward progress.
	for i := 1; i < len(path); i++ {
		if pd.Grid.CellCenter(path[i]).Lon < pd.Grid.CellCenter(path[i-1]).Lon-1e-9 {
			t.Errorf("corridor heads west at %d", i)
		}
	}
	if pd.Grid.CellCenter(path[len(path)-1]).Lon <= pd.Grid.CellCenter(path[0]).Lon {
		t.Error("corridor made no eastward progress")
	}
	// No corridor above threshold when traffic is weak.
	weak := NewPathDensity(geo.NewGrid(box, 64, 64))
	weak.AddTrajectory(eastTrack("V", 10))
	if got := weak.Corridor(5, 10); got != nil {
		t.Errorf("weak traffic corridor = %v", got)
	}
}

func TestPathDensityOnSyntheticWorld(t *testing.T) {
	sc := synth.GenMaritime(synth.MaritimeConfig{Seed: 51, Vessels: 40, Duration: 2 * time.Hour})
	pd := NewPathDensity(geo.NewGrid(sc.Box, 48, 48))
	for _, tr := range sc.Truth {
		pd.AddTrajectory(tr)
	}
	edges := pd.TopEdges(20)
	if len(edges) < 5 {
		t.Fatalf("too few corridor edges: %d", len(edges))
	}
	// Strongest corridors carry several vessels (the shared lane graph).
	if edges[0].Count < 3 {
		t.Errorf("top edge count = %d, want shared-lane traffic", edges[0].Count)
	}
}
