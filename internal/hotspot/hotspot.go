// Package hotspot implements the density analytics behind the paper's
// "prediction of ... capacity demand, hot spots / paths" (§1): windowed
// density grids, Getis-Ord-style hotspot scoring, per-sector occupancy
// (ATM capacity demand) and origin-destination flow aggregation.
package hotspot

import (
	"math"
	"sort"

	"github.com/datacron-project/datacron/internal/geo"
	"github.com/datacron-project/datacron/internal/model"
)

// DensityGrid accumulates report counts per grid cell.
type DensityGrid struct {
	Grid   geo.Grid
	Counts []float64
	total  float64
}

// NewDensityGrid returns an empty density grid.
func NewDensityGrid(g geo.Grid) *DensityGrid {
	return &DensityGrid{Grid: g, Counts: make([]float64, g.NumCells())}
}

// Add counts one report.
func (d *DensityGrid) Add(p geo.Point) {
	d.Counts[d.Grid.CellID(p)]++
	d.total++
}

// AddWeighted counts a weighted observation.
func (d *DensityGrid) AddWeighted(p geo.Point, w float64) {
	d.Counts[d.Grid.CellID(p)] += w
	d.total += w
}

// Total returns the accumulated weight.
func (d *DensityGrid) Total() float64 { return d.total }

// RestoreCounts replaces the cell counts with a copy of counts (padded or
// clipped to the grid size) and recomputes the total — snapshot restore
// for the durable serving layer.
func (d *DensityGrid) RestoreCounts(counts []float64) {
	d.Counts = make([]float64, d.Grid.NumCells())
	d.total = 0
	for i, c := range counts {
		if i >= len(d.Counts) {
			break
		}
		d.Counts[i] = c
		d.total += c
	}
}

// Max returns the maximum cell weight.
func (d *DensityGrid) Max() float64 {
	m := 0.0
	for _, c := range d.Counts {
		if c > m {
			m = c
		}
	}
	return m
}

// GiStar computes a Getis-Ord Gi*-style z-score per cell: how far the
// cell's neighbourhood (cell + 8 neighbours) mean deviates from the global
// mean, in units of the global standard deviation adjusted for
// neighbourhood size. Cells with z ≥ ~2 are significant hotspots.
func (d *DensityGrid) GiStar() []float64 {
	n := float64(len(d.Counts))
	if n == 0 {
		return nil
	}
	var sum, sumSq float64
	for _, c := range d.Counts {
		sum += c
		sumSq += c * c
	}
	mean := sum / n
	std := math.Sqrt(sumSq/n - mean*mean)
	out := make([]float64, len(d.Counts))
	if std == 0 {
		return out
	}
	for cell := range d.Counts {
		neigh := append(d.Grid.Neighbors(cell), cell)
		var local float64
		for _, c := range neigh {
			local += d.Counts[c]
		}
		w := float64(len(neigh))
		// Gi* numerator: local sum - mean*w; denominator: std * sqrt(w*(n-w)/(n-1)).
		denom := std * math.Sqrt(w*(n-w)/(n-1))
		if denom == 0 {
			continue
		}
		out[cell] = (local - mean*w) / denom
	}
	return out
}

// Hotspot is one significant cell.
type Hotspot struct {
	Cell   int
	Center geo.Point
	Z      float64
	Count  float64
}

// Hotspots returns the cells with Gi* z-score at or above zThreshold,
// strongest first.
func (d *DensityGrid) Hotspots(zThreshold float64) []Hotspot {
	zs := d.GiStar()
	var out []Hotspot
	for cell, z := range zs {
		if z >= zThreshold {
			out = append(out, Hotspot{Cell: cell, Center: d.Grid.CellCenter(cell), Z: z, Count: d.Counts[cell]})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Z != out[j].Z {
			return out[i].Z > out[j].Z
		}
		return out[i].Cell < out[j].Cell
	})
	return out
}

// Occupancy tracks distinct entities per named area per time window —
// the ATM "capacity demand" measure.
type Occupancy struct {
	WindowMS int64
	// window start → area → set of entities
	counts map[int64]map[string]map[string]struct{}
}

// NewOccupancy returns an occupancy tracker with the given window size.
func NewOccupancy(windowMS int64) *Occupancy {
	if windowMS <= 0 {
		windowMS = 10 * 60000
	}
	return &Occupancy{WindowMS: windowMS, counts: make(map[int64]map[string]map[string]struct{})}
}

// Observe records that entity was in area at ts.
func (o *Occupancy) Observe(area, entity string, ts int64) {
	w := ts - mod(ts, o.WindowMS)
	byArea, ok := o.counts[w]
	if !ok {
		byArea = make(map[string]map[string]struct{})
		o.counts[w] = byArea
	}
	set, ok := byArea[area]
	if !ok {
		set = make(map[string]struct{})
		byArea[area] = set
	}
	set[entity] = struct{}{}
}

// WindowCount is one (window, area) occupancy result.
type WindowCount struct {
	WindowStart int64
	Area        string
	Entities    int
}

// Counts returns all occupancy counts ordered by window then area.
func (o *Occupancy) Counts() []WindowCount {
	var out []WindowCount
	for w, byArea := range o.counts {
		for area, set := range byArea {
			out = append(out, WindowCount{WindowStart: w, Area: area, Entities: len(set)})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].WindowStart != out[j].WindowStart {
			return out[i].WindowStart < out[j].WindowStart
		}
		return out[i].Area < out[j].Area
	})
	return out
}

// CongestionEvents turns occupancy counts into hotspot events: windows
// where an area's occupancy reaches `threshold` entities. Consecutive
// windows merge into one event.
func (o *Occupancy) CongestionEvents(threshold int) []model.Event {
	counts := o.Counts()
	// Group by area, walk windows in order.
	byArea := make(map[string][]WindowCount)
	for _, wc := range counts {
		byArea[wc.Area] = append(byArea[wc.Area], wc)
	}
	var events []model.Event
	var areas []string
	for a := range byArea {
		areas = append(areas, a)
	}
	sort.Strings(areas)
	for _, area := range areas {
		var cur *model.Event
		for _, wc := range byArea[area] {
			hot := wc.Entities >= threshold
			switch {
			case hot && cur == nil:
				events = append(events, model.Event{
					Type: "hotspot", Area: area, Entity: area,
					StartTS: wc.WindowStart, EndTS: wc.WindowStart + o.WindowMS,
				})
				cur = &events[len(events)-1]
			case hot && cur != nil && wc.WindowStart <= cur.EndTS:
				cur.EndTS = wc.WindowStart + o.WindowMS
			case !hot:
				cur = nil
			}
		}
	}
	return events
}

// Flow aggregates origin-destination transitions between named areas.
type Flow struct {
	counts map[[2]string]int
	last   map[string]string // entity → last area
}

// NewFlow returns an empty flow aggregator.
func NewFlow() *Flow {
	return &Flow{counts: make(map[[2]string]int), last: make(map[string]string)}
}

// Observe records that entity is currently in area ("" = open sea/air);
// transitions between distinct named areas increment the OD count.
func (f *Flow) Observe(entity, area string) {
	prev := f.last[entity]
	if area != "" && prev != "" && prev != area {
		f.counts[[2]string{prev, area}]++
	}
	if area != "" {
		f.last[entity] = area
	}
}

// FlowCount is one OD pair count.
type FlowCount struct {
	From, To string
	Count    int
}

// Top returns the k strongest flows.
func (f *Flow) Top(k int) []FlowCount {
	out := make([]FlowCount, 0, len(f.counts))
	for od, c := range f.counts {
		out = append(out, FlowCount{From: od[0], To: od[1], Count: c})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		if out[i].From != out[j].From {
			return out[i].From < out[j].From
		}
		return out[i].To < out[j].To
	})
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out
}

func mod(a, b int64) int64 {
	m := a % b
	if m < 0 {
		m += b
	}
	return m
}
