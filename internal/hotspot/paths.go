package hotspot

import (
	"sort"

	"github.com/datacron-project/datacron/internal/geo"
	"github.com/datacron-project/datacron/internal/model"
)

// PathDensity aggregates movement *edges* rather than positions: each
// consecutive report pair of a trajectory increments the directed edge
// between their grid cells. The strongest edges trace the "hot paths" of
// the paper's §1 ("prediction of ... hot spots / paths") — the de-facto
// route network of the traffic.
type PathDensity struct {
	Grid  geo.Grid
	edges map[[2]int]int
}

// NewPathDensity returns an empty aggregator over the grid.
func NewPathDensity(g geo.Grid) *PathDensity {
	return &PathDensity{Grid: g, edges: make(map[[2]int]int)}
}

// AddTrajectory accumulates all movement edges of a trajectory. Pauses
// (speed ≤ 0.5 m/s) and intra-cell movement contribute nothing.
func (pd *PathDensity) AddTrajectory(tr *model.Trajectory) {
	for i := 1; i < tr.Len(); i++ {
		a, b := tr.Points[i-1], tr.Points[i]
		if b.SpeedMS <= 0.5 {
			continue
		}
		ca, cb := pd.Grid.CellID(a.Pt), pd.Grid.CellID(b.Pt)
		if ca == cb {
			continue
		}
		pd.edges[[2]int{ca, cb}]++
	}
}

// PathEdge is one directed cell-to-cell corridor segment.
type PathEdge struct {
	FromCell, ToCell int
	From, To         geo.Point
	Count            int
}

// TopEdges returns the k strongest corridor segments, strongest first.
func (pd *PathDensity) TopEdges(k int) []PathEdge {
	out := make([]PathEdge, 0, len(pd.edges))
	for e, c := range pd.edges {
		out = append(out, PathEdge{
			FromCell: e[0], ToCell: e[1],
			From: pd.Grid.CellCenter(e[0]), To: pd.Grid.CellCenter(e[1]),
			Count: c,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		if out[i].FromCell != out[j].FromCell {
			return out[i].FromCell < out[j].FromCell
		}
		return out[i].ToCell < out[j].ToCell
	})
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out
}

// Corridor greedily extends the strongest edge into a path: from the
// strongest edge, repeatedly append the strongest outgoing edge of the
// current end cell (and prepend the strongest incoming edge of the start)
// until no edge with at least minCount remains or the path reaches maxLen
// cells. The result traces one dominant traffic corridor.
func (pd *PathDensity) Corridor(minCount, maxLen int) []int {
	top := pd.TopEdges(1)
	if len(top) == 0 || top[0].Count < minCount {
		return nil
	}
	path := []int{top[0].FromCell, top[0].ToCell}
	used := map[int]bool{top[0].FromCell: true, top[0].ToCell: true}
	// Extend forward.
	for len(path) < maxLen {
		end := path[len(path)-1]
		next, c := pd.bestFrom(end, used)
		if c < minCount {
			break
		}
		path = append(path, next)
		used[next] = true
	}
	// Extend backward.
	for len(path) < maxLen {
		start := path[0]
		prev, c := pd.bestTo(start, used)
		if c < minCount {
			break
		}
		path = append([]int{prev}, path...)
		used[prev] = true
	}
	return path
}

// bestFrom returns the strongest unused successor of cell.
func (pd *PathDensity) bestFrom(cell int, used map[int]bool) (next, count int) {
	count = -1
	for e, c := range pd.edges {
		if e[0] != cell || used[e[1]] {
			continue
		}
		if c > count || (c == count && e[1] < next) {
			next, count = e[1], c
		}
	}
	return next, count
}

// bestTo returns the strongest unused predecessor of cell.
func (pd *PathDensity) bestTo(cell int, used map[int]bool) (prev, count int) {
	count = -1
	for e, c := range pd.edges {
		if e[1] != cell || used[e[0]] {
			continue
		}
		if c > count || (c == count && e[0] < prev) {
			prev, count = e[0], c
		}
	}
	return prev, count
}
