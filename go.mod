module github.com/datacron-project/datacron

go 1.24
