package datacron

import (
	"testing"
	"time"
)

func TestFacadeMaritime(t *testing.T) {
	sc := GenerateMaritime(1, 10, 30*time.Minute)
	if len(sc.Entities) != 10 || len(sc.WireLines) == 0 {
		t.Fatalf("scenario shape: %d entities, %d lines", len(sc.Entities), len(sc.WireLines))
	}
	p := NewMaritimePipeline()
	if _, err := p.RunScenario(sc); err != nil {
		t.Fatal(err)
	}
	res, err := p.Engine.Execute(`SELECT COUNT ?v WHERE { ?v rdf:type dat:Vessel . }`)
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := res.Rows[0][0].Int(); n != 10 {
		t.Errorf("vessel count = %d", n)
	}
}

func TestFacadeAviation(t *testing.T) {
	sc := GenerateAviation(1, 6, 30*time.Minute)
	p := NewAviationPipeline()
	if _, err := p.RunScenario(sc); err != nil {
		t.Fatal(err)
	}
	if p.Stats.Decoded == 0 {
		t.Error("nothing decoded")
	}
}

func TestFacadeCustomConfig(t *testing.T) {
	p := NewPipeline(Config{Shards: 2})
	if p.Store.NumShards() != 2 {
		t.Errorf("shards = %d", p.Store.NumShards())
	}
	if Version == "" {
		t.Error("empty version")
	}
}
