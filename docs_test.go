package datacron

import (
	"os"
	"regexp"
	"strings"
	"testing"
)

// TestMarkdownLinks is the tier-1 twin of the CI markdown link check: the
// operator docs must exist and every relative link in them must resolve to
// a file in the repository.
func TestMarkdownLinks(t *testing.T) {
	link := regexp.MustCompile(`\]\(([^)]+)\)`)
	for _, doc := range []string{"README.md", "OPERATIONS.md", "DESIGN.md", "ROADMAP.md"} {
		data, err := os.ReadFile(doc)
		if err != nil {
			t.Errorf("%s: %v", doc, err)
			continue
		}
		for _, m := range link.FindAllStringSubmatch(string(data), -1) {
			target := m[1]
			if strings.HasPrefix(target, "http://") || strings.HasPrefix(target, "https://") ||
				strings.HasPrefix(target, "mailto:") || strings.HasPrefix(target, "#") {
				continue
			}
			if i := strings.IndexByte(target, '#'); i >= 0 {
				target = target[:i]
			}
			if _, err := os.Stat(target); err != nil {
				t.Errorf("%s: broken link %q", doc, m[1])
			}
		}
	}
}
