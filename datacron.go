// Package datacron is the public facade of the datAcron reproduction: a big
// data management and analytics stack for mobility forecasting over moving
// entities in the maritime (2D) and aviation (3D) domains, reproducing
// Doulkeridis et al., "Big Data Management and Analytics for Mobility
// Forecasting in datAcron" (EDBT/ICDT 2017 workshops).
//
// The facade wraps the full architecture: synthetic AIS/ADS-B data sources,
// in-situ stream compression, RDF transformation, link discovery, a
// partitioned parallel spatiotemporal RDF store with a SPARQL-like query
// language, complex event recognition, trajectory & event forecasting, and
// visual analytics. See DESIGN.md for the component inventory and
// EXPERIMENTS.md for the measured results.
package datacron

import (
	"time"

	"github.com/datacron-project/datacron/internal/core"
	"github.com/datacron-project/datacron/internal/model"
	"github.com/datacron-project/datacron/internal/synth"
)

// Version of the reproduction.
const Version = "1.0.0"

// Pipeline is the running datAcron architecture; see internal/core for the
// full API (query engine, parallel store, CER suite, density analytics).
type Pipeline = core.Pipeline

// Config parameterises a pipeline.
type Config = core.Config

// Scenario is a generated synthetic world with ground truth.
type Scenario = synth.Scenario

// NewMaritimePipeline returns a pipeline configured for vessel traffic.
func NewMaritimePipeline() *Pipeline {
	return core.New(core.Config{Domain: model.Maritime})
}

// NewAviationPipeline returns a pipeline configured for flight traffic.
func NewAviationPipeline() *Pipeline {
	return core.New(core.Config{Domain: model.Aviation})
}

// NewPipeline returns a pipeline with a custom configuration.
func NewPipeline(cfg Config) *Pipeline { return core.New(cfg) }

// GenerateMaritime produces a deterministic synthetic maritime world:
// vessels on Aegean shipping lanes with scripted rendezvous, loitering,
// fishing activity, AIS gaps and GPS noise, emitted as genuine AIS AIVDM
// sentences plus aligned ground truth.
func GenerateMaritime(seed int64, vessels int, duration time.Duration) *Scenario {
	return synth.GenMaritime(synth.MaritimeConfig{Seed: seed, Vessels: vessels, Duration: duration})
}

// GenerateAviation produces a deterministic synthetic aviation world:
// flights between Aegean-region airports with climb/cruise/descent
// profiles and scripted holding congestion, emitted as SBS-1 BaseStation
// messages plus aligned ground truth.
func GenerateAviation(seed int64, flights int, duration time.Duration) *Scenario {
	return synth.GenAviation(synth.AviationConfig{Seed: seed, Flights: flights, Duration: duration})
}
