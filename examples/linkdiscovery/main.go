// Link discovery: the paper's data integration component (§2). Matches the
// AIS fleet against a noisy external vessel registry (identity links) and
// enriches position reports with the nearest contemporaneous weather cell
// (spatiotemporal links), comparing naive and blocked matching.
//
//	go run ./examples/linkdiscovery
package main

import (
	"fmt"
	"time"

	"github.com/datacron-project/datacron/internal/interlink"
	"github.com/datacron-project/datacron/internal/synth"
)

func main() {
	sc := synth.GenMaritime(synth.MaritimeConfig{Seed: 3, Vessels: 200, Duration: 30 * time.Minute})
	registry := synth.GenRegistry(sc, 99, 0.5)
	fmt.Printf("sources: %d AIS entities vs %d registry records (noisy names)\n",
		len(sc.Entities), len(registry))

	var a, b []interlink.NameRecord
	truth := interlink.Truth{}
	for _, e := range sc.Entities {
		a = append(a, interlink.NameRecord{ID: e.ID, Name: e.Name, LengthM: e.LengthM})
	}
	for _, r := range registry {
		b = append(b, interlink.NameRecord{ID: r.RegID, Name: r.Name, LengthM: r.LengthM})
		truth[r.TruthID] = r.RegID
	}

	for _, mode := range []struct {
		name  string
		match func([]interlink.NameRecord, []interlink.NameRecord, interlink.MatchConfig) []interlink.Link
	}{
		{"naive O(n*m)", interlink.MatchNaive},
		{"token-blocked", interlink.MatchBlocked},
	} {
		start := time.Now()
		links := mode.match(a, b, interlink.MatchConfig{})
		p, r, f1 := interlink.Score(links, truth)
		fmt.Printf("%-14s %6d links  precision=%.3f recall=%.3f f1=%.3f  in %v\n",
			mode.name, len(links), p, r, f1, time.Since(start))
	}

	// Enrichment: link a sample of positions to weather observations.
	weather := synth.GenWeather(sc.Box, 16, 12, time.UnixMilli(sc.Positions[0].TS).UTC(), time.Hour)
	var pos, wx []interlink.SpatialRecord
	for i, p := range sc.Positions {
		if i%500 == 0 {
			pos = append(pos, interlink.SpatialRecord{ID: fmt.Sprintf("pos-%d", i), Pt: p.Pt, TS: p.TS})
		}
	}
	for i, w := range weather {
		wx = append(wx, interlink.SpatialRecord{ID: fmt.Sprintf("wx-%d", i), Pt: w.Center, TS: w.TS})
	}
	links := interlink.LinkSpatial(pos, wx, sc.Box, interlink.SpatialLinkConfig{MaxDistM: 50000})
	fmt.Printf("\nenrichment: %d/%d position samples linked to weather cells\n", len(links), len(pos))
	for i, l := range links {
		if i == 5 {
			break
		}
		fmt.Printf("  %s → %s (score %.2f)\n", l.A, l.B, l.Score)
	}
}
