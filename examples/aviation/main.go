// Air traffic management: the paper's aviation use case (§3). Generates
// flights over the Aegean FIR with a scripted holding episode, detects the
// resulting sector hotspot from occupancy analytics, and queries the 3D
// trajectory store.
//
//	go run ./examples/aviation
package main

import (
	"fmt"
	"log"
	"time"

	"github.com/datacron-project/datacron/internal/core"
	"github.com/datacron-project/datacron/internal/hotspot"
	"github.com/datacron-project/datacron/internal/model"
	"github.com/datacron-project/datacron/internal/synth"
)

func main() {
	sc := synth.GenAviation(synth.AviationConfig{
		Seed: 11, Flights: 60, Duration: 2 * time.Hour, HoldEpisodes: 1,
	})
	fmt.Printf("aviation world: %d flights, %d SBS messages\n",
		len(sc.Entities), len(sc.WireLines))

	pipeline := core.New(core.Config{Domain: model.Aviation})
	if _, err := pipeline.RunScenario(sc); err != nil {
		log.Fatalf("ingest: %v", err)
	}
	fmt.Println(pipeline.Report())

	// Sector occupancy (capacity demand) from the decoded stream.
	grid := synth.SectorGrid()
	occ := hotspot.NewOccupancy((10 * time.Minute).Milliseconds())
	for _, p := range sc.Positions {
		occ.Observe(synth.SectorName(grid.CellID(p.Pt)), p.EntityID, p.TS)
	}
	fmt.Println("\nsector congestion events (≥8 aircraft / 10 min):")
	for _, ev := range occ.CongestionEvents(8) {
		fmt.Printf("  %s %s..%s\n", ev.Area,
			time.UnixMilli(ev.StartTS).UTC().Format("15:04"),
			time.UnixMilli(ev.EndTS).UTC().Format("15:04"))
	}
	truth := sc.EventsOfType("hotspot")
	if len(truth) > 0 {
		fmt.Printf("scripted hold: %s %s..%s (ground truth)\n", truth[0].Area,
			time.UnixMilli(truth[0].StartTS).UTC().Format("15:04"),
			time.UnixMilli(truth[0].EndTS).UTC().Format("15:04"))
	}

	// 3D query: aircraft above FL300 near Athens.
	res, err := pipeline.Engine.Execute(`SELECT ?who ?alt WHERE {
		?n rdf:type dat:SemanticNode .
		?n dat:ofMovingObject ?who .
		?n dat:altitude ?alt .
		?n dat:longitude ?lon . ?n dat:latitude ?lat .
		FILTER st:dwithin(?lon, ?lat, 23.94, 37.94, 150000)
		FILTER (?alt > 9144)
	} LIMIT 8`)
	if err != nil {
		log.Fatalf("query: %v", err)
	}
	fmt.Printf("\nhigh-altitude aircraft within 150km of Athens (%v):\n", res.Elapsed)
	for _, row := range res.Rows {
		fmt.Printf("  %s at %sm\n", row[0].Value, row[1].Value)
	}
}
