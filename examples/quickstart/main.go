// Quickstart: generate a small maritime world, run the full datAcron
// pipeline over its AIS wire stream, then query the parallel RDF store and
// print the detected complex events.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"github.com/datacron-project/datacron"
)

func main() {
	// A deterministic world: 20 vessels for one hour of simulated time.
	scenario := datacron.GenerateMaritime(42, 20, time.Hour)
	fmt.Printf("world: %d vessels, %d AIS sentences, %d scripted events\n",
		len(scenario.Entities), len(scenario.WireLines), len(scenario.Events))

	// Run the architecture: decode → in-situ compress → RDF → store → CER.
	pipeline := datacron.NewMaritimePipeline()
	detected, err := pipeline.RunScenario(scenario)
	if err != nil {
		log.Fatalf("ingest: %v", err)
	}
	fmt.Println(pipeline.Report())

	fmt.Printf("\ndetected %d complex events; first few:\n", len(detected))
	for i, ev := range detected {
		if i == 5 {
			break
		}
		fmt.Printf("  %s\n", ev)
	}

	// Spatio-temporal query: vessels seen in the central Aegean.
	res, err := pipeline.Engine.Execute(`SELECT ?who WHERE {
		?n rdf:type dat:SemanticNode .
		?n dat:ofMovingObject ?who .
		?n dat:longitude ?lon . ?n dat:latitude ?lat .
		FILTER st:within(?lon, ?lat, 24.0, 36.5, 26.0, 38.5)
	} LIMIT 10`)
	if err != nil {
		log.Fatalf("query: %v", err)
	}
	fmt.Printf("\nvessels in the central Aegean (%d shards visited, %v):\n",
		res.ShardsVisited, res.Elapsed)
	for _, row := range res.Rows {
		fmt.Printf("  %s\n", row[0].Value)
	}
}
