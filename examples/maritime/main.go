// Maritime situational awareness: the paper's maritime use case (§3).
// Generates a busy Aegean world with scripted rendezvous and loitering,
// detects them from the AIS wire stream, scores detections against ground
// truth, forecasts vessel positions, and renders a density heatmap with
// hotspot markers.
//
//	go run ./examples/maritime
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"github.com/datacron-project/datacron/internal/core"
	"github.com/datacron-project/datacron/internal/forecast"
	"github.com/datacron-project/datacron/internal/model"
	"github.com/datacron-project/datacron/internal/synth"
	"github.com/datacron-project/datacron/internal/viz"
)

func main() {
	sc := synth.GenMaritime(synth.MaritimeConfig{
		Seed: 7, Vessels: 40, Duration: 2 * time.Hour,
		Rendezvous: 2, Loiterers: 3,
	})
	fmt.Printf("Aegean world: %d vessels, %d reports, %d scripted events\n",
		len(sc.Entities), len(sc.Positions), len(sc.Events))

	pipeline := core.New(core.Config{Domain: model.Maritime})
	detected, err := pipeline.RunScenario(sc)
	if err != nil {
		log.Fatalf("ingest: %v", err)
	}
	fmt.Println(pipeline.Report())

	// Score CER against the scripted ground truth.
	for _, typ := range []string{"loitering", "rendezvous"} {
		truth := sc.EventsOfType(typ)
		var dets []model.Event
		for _, ev := range detected {
			if ev.Type == typ {
				dets = append(dets, ev)
			}
		}
		p, r, f1 := synth.ScoreDetections(truth, dets)
		fmt.Printf("%-11s truth=%d detected=%d precision=%.2f recall=%.2f f1=%.2f\n",
			typ, len(truth), len(dets), p, r, f1)
	}

	// Trajectory forecasting: train a route network on the first half of
	// the data, predict 10 minutes ahead on the second half.
	rn := forecast.NewRouteNetwork(sc.Box, 128, 128)
	for _, tr := range sc.Truth {
		mid := (tr.Start() + tr.End()) / 2
		rn.Train(tr.Slice(tr.Start(), mid))
	}
	horizons := []time.Duration{time.Minute, 5 * time.Minute, 15 * time.Minute}
	fmt.Println("\ntrajectory forecast mean error (m):")
	fmt.Printf("%-16s", "model")
	for _, h := range horizons {
		fmt.Printf("%12v", h)
	}
	fmt.Println()
	for _, pred := range []forecast.Predictor{forecast.DeadReckoning{}, forecast.Kinematic{}, rn} {
		errs, _ := forecast.HorizonError(pred, sc.Truth, horizons, 10*time.Minute)
		fmt.Printf("%-16s", pred.Name())
		for _, e := range errs {
			fmt.Printf("%12.0f", e)
		}
		fmt.Println()
	}

	// Visual analytics: traffic density heatmap with hotspot markers.
	spots := pipeline.Density.Hotspots(3)
	fmt.Printf("\n%d traffic hotspots (Gi* z≥3)\n", len(spots))
	f, err := os.Create("maritime-density.ppm")
	if err != nil {
		log.Fatalf("heatmap: %v", err)
	}
	defer f.Close()
	if err := viz.HeatmapPPM(f, pipeline.Density, 8); err != nil {
		log.Fatalf("heatmap: %v", err)
	}
	fmt.Println("wrote maritime-density.ppm")
}
