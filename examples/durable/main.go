// Example durable: the durability subsystem end to end, in one process.
// A pipeline ingests a generated AIS wire stream through the write-ahead
// log, snapshots mid-stream, then "crashes" (the pipeline is simply
// dropped with lines still unprocessed). A second pipeline recovers from
// the same data directory — snapshot load + tail replay — and the program
// verifies the recovered state matches an uninterrupted run exactly.
// Finally the same log is replayed twice through fresh pipelines to show
// the deterministic replay harness the golden tests are built on.
package main

import (
	"bytes"
	"fmt"
	"log"
	"os"
	"time"

	"github.com/datacron-project/datacron/internal/core"
	"github.com/datacron-project/datacron/internal/model"
	"github.com/datacron-project/datacron/internal/synth"
	"github.com/datacron-project/datacron/internal/wal"
)

func main() {
	log.SetFlags(0)

	sc := synth.GenMaritime(synth.MaritimeConfig{
		Seed: 99, Vessels: 12, Duration: time.Hour, Rendezvous: -1, Loiterers: 2,
	})
	prime := func(p *core.Pipeline) {
		p.InstallAreas(sc.Areas)
		p.InstallEntities(sc.Entities)
	}
	dataDir, err := os.MkdirTemp("", "datacron-durable-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dataDir)
	fmt.Printf("data dir: %s (%d wire lines)\n\n", dataDir, len(sc.WireTimed))

	// Session 1: durable ingest with a snapshot at 70%.
	walLog, err := wal.Open(core.WALDir(dataDir), wal.Options{})
	if err != nil {
		log.Fatal(err)
	}
	p1 := core.New(core.Config{Domain: model.Maritime})
	prime(p1)
	snapAt := len(sc.WireTimed) * 7 / 10
	for i, tl := range sc.WireTimed {
		if _, err := p1.IngestLineLogged(walLog, tl); err != nil {
			log.Fatal(err)
		}
		if i%512 == 511 {
			if err := walLog.Commit(); err != nil { // group commit, as /ingest does per batch
				log.Fatal(err)
			}
		}
		if i == snapAt {
			info, err := p1.WriteSnapshot(dataDir, nil, walLog)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("snapshot at line %d: cutLSN=%d triples=%d took=%v\n",
				i, info.CutLSN, info.Triples, info.Took.Round(time.Millisecond))
		}
	}
	if err := walLog.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("session 1 (crashed after ack): %s\n\n", p1.Report())

	// Session 2: recover on the same data dir.
	p2 := core.New(core.Config{Domain: model.Maritime})
	prime(p2)
	rs, err := p2.Recover(dataDir)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recovered: snapshot lsn=%d (%d triples), tail replayed=%d lines, skipped=%d, in %v\n",
		rs.SnapshotLSN, rs.SnapshotTriples, rs.Replayed, rs.SkippedApplied, rs.Took.Round(time.Millisecond))

	var nt1, nt2 bytes.Buffer
	if err := p1.Store.ExportNT(&nt1); err != nil {
		log.Fatal(err)
	}
	if err := p2.Store.ExportNT(&nt2); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recovered == uninterrupted: counters %v, store dump %v\n\n",
		p2.Stats.Snapshot() == p1.Stats.Snapshot(), bytes.Equal(nt1.Bytes(), nt2.Bytes()))

	// Deterministic replay harness: two fresh pipelines, same log.
	ra, rsa, err := core.Replay(dataDir, core.Config{Domain: model.Maritime}, prime)
	if err != nil {
		log.Fatal(err)
	}
	rb, _, err := core.Replay(dataDir, core.Config{Domain: model.Maritime}, prime)
	if err != nil {
		log.Fatal(err)
	}
	var ntA, ntB bytes.Buffer
	_ = ra.Store.ExportNT(&ntA)
	_ = rb.Store.ExportNT(&ntB)
	fmt.Printf("replay harness: %d records re-fed, two replays identical: %v\n",
		rsa.Replayed+rsa.SkippedApplied, bytes.Equal(ntA.Bytes(), ntB.Bytes()) && ra.Stats.Snapshot() == rb.Stats.Snapshot())
}
