// Example serve: the online serving layer end to end. Starts a
// datacron-serve instance in-process, drives it with 8 concurrent ingest
// clients replaying a generated AIS wire stream, subscribes to the complex
// event stream, and interleaves queries — the datAcron online architecture
// (ingest, query and event recognition all concurrent) in one program.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"log"
	"net"
	"net/http"
	"strings"
	"sync"
	"time"

	"github.com/datacron-project/datacron/internal/ais"
	"github.com/datacron-project/datacron/internal/core"
	"github.com/datacron-project/datacron/internal/model"
	"github.com/datacron-project/datacron/internal/server"
	"github.com/datacron-project/datacron/internal/synth"
)

func main() {
	log.SetFlags(0)

	// A maritime world with scripted loitering and rendezvous.
	sc := synth.GenMaritime(synth.MaritimeConfig{
		Seed: 7, Vessels: 30, Duration: 2 * time.Hour, Loiterers: 2, Rendezvous: 1,
	})
	p := core.New(core.Config{Domain: model.Maritime, Shards: 8})
	p.InstallAreas(sc.Areas)
	p.InstallEntities(sc.Entities)

	srv := server.New(server.Config{Pipeline: p, QueueLen: 8192})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	go httpSrv.Serve(ln)
	base := "http://" + ln.Addr().String()
	fmt.Printf("serving on %s\n", base)

	// Subscribe to the live event stream before traffic starts.
	var evMu sync.Mutex
	evCounts := map[string]int{}
	shown := 0
	go func() {
		resp, err := http.Get(base + "/events")
		if err != nil {
			return
		}
		defer resp.Body.Close()
		scn := bufio.NewScanner(resp.Body)
		for scn.Scan() {
			line := scn.Text()
			if !strings.HasPrefix(line, "data: ") {
				continue
			}
			var ev struct {
				Type, Entity, Other string
			}
			if json.Unmarshal([]byte(line[len("data: "):]), &ev) != nil {
				continue
			}
			evMu.Lock()
			evCounts[ev.Type]++
			if shown < 5 {
				shown++
				fmt.Printf("  event: %-10s %s %s\n", ev.Type, ev.Entity, ev.Other)
			}
			evMu.Unlock()
		}
	}()

	// Partition the wire stream by entity routing key across 8 clients so
	// each entity's reports stay in order within one client.
	const clients = 8
	parts := make([][]synth.TimedLine, clients)
	for _, tl := range sc.WireTimed {
		key, ok := ais.RoutingKey(tl.Line)
		if !ok {
			key = tl.Line
		}
		h := fnv.New32a()
		h.Write([]byte(key))
		i := int(h.Sum32() % clients)
		parts[i] = append(parts[i], tl)
	}

	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(lines []synth.TimedLine) {
			defer wg.Done()
			const batch = 2000
			for i := 0; i < len(lines); i += batch {
				end := i + batch
				if end > len(lines) {
					end = len(lines)
				}
				// On 429 the server stops at the first shed line, so
				// `accepted` is the exact resume offset within the batch.
				pending := lines[i:end]
				for len(pending) > 0 {
					var b strings.Builder
					for _, tl := range pending {
						fmt.Fprintf(&b, "%d %s\n", tl.TS, tl.Line)
					}
					resp, err := http.Post(base+"/ingest", "text/plain", strings.NewReader(b.String()))
					if err != nil {
						log.Fatal(err)
					}
					var ir struct{ Accepted, Rejected int }
					json.NewDecoder(resp.Body).Decode(&ir)
					resp.Body.Close()
					if resp.StatusCode != http.StatusTooManyRequests {
						break
					}
					pending = pending[ir.Accepted:]
					time.Sleep(50 * time.Millisecond) // backpressure: resend the rest
				}
			}
		}(parts[c])
	}

	// Query while ingest is in flight.
	time.Sleep(50 * time.Millisecond)
	q := `SELECT ?v ?name WHERE { ?v rdf:type dat:Vessel . ?v dat:name ?name . } LIMIT 3`
	resp, err := http.Post(base+"/query", "text/plain", strings.NewReader(q))
	if err != nil {
		log.Fatal(err)
	}
	var mid struct{ Rows [][]string }
	json.NewDecoder(resp.Body).Decode(&mid)
	resp.Body.Close()
	fmt.Printf("mid-ingest query returned %d vessels while %d lines pending\n",
		len(mid.Rows), srv.Ingestor().Pending())

	wg.Wait()
	srv.Ingestor().Quiesce(time.Minute)
	el := time.Since(start)
	snap := p.Stats.Snapshot()
	fmt.Printf("ingested %d lines from %d clients in %v (%.0f lines/sec)\n",
		snap.Lines, clients, el.Round(time.Millisecond), float64(snap.Lines)/el.Seconds())

	// Spatiotemporal range over the whole run.
	world := p.WorldBox()
	rurl := fmt.Sprintf("%s/range?minlon=%f&minlat=%f&maxlon=%f&maxlat=%f&limit=1",
		base, world.MinLon-1, world.MinLat-1, world.MaxLon+1, world.MaxLat+1)
	rr, err := http.Get(rurl)
	if err != nil {
		log.Fatal(err)
	}
	var rng struct {
		Count         int
		ShardsVisited int
	}
	json.NewDecoder(rr.Body).Decode(&rng)
	rr.Body.Close()
	fmt.Printf("range query: %d anchored fragments across %d shards\n", rng.Count, rng.ShardsVisited)

	evMu.Lock()
	fmt.Printf("live events by type: %v\n", evCounts)
	evMu.Unlock()
	fmt.Println(p.Report())

	httpSrv.Close()
	srv.Close()
}
