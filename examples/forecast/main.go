// Example forecast: the online forecasting subsystem end to end. A
// forecast-enabled pipeline ingests a generated AIS wire stream; the
// ForecastHub taps every gated report, warming per-entity history and
// incrementally training the shared route-network/KNN/Markov models. The
// program then asks the hub for forecasts the way GET /forecast would —
// per entity at several horizons, with the model chosen by the fallback
// ladder — and scores them against the generator's noise-free ground
// truth. Finally it snapshots, recovers into a fresh pipeline, and shows
// the recovered hub forecasting identically (the kill -9 guarantee).
package main

import (
	"fmt"
	"log"
	"os"
	"sort"
	"time"

	"github.com/datacron-project/datacron/internal/core"
	"github.com/datacron-project/datacron/internal/geo"
	"github.com/datacron-project/datacron/internal/model"
	"github.com/datacron-project/datacron/internal/synth"
	"github.com/datacron-project/datacron/internal/wal"
)

func main() {
	log.SetFlags(0)

	sc := synth.GenMaritime(synth.MaritimeConfig{
		Seed: 7, Vessels: 12, Duration: 2 * time.Hour, Rendezvous: -1,
	})
	cfg := core.Config{
		Domain:   model.Maritime,
		Forecast: core.ForecastConfig{Enabled: true},
	}
	p := core.New(cfg)
	p.InstallAreas(sc.Areas)
	p.InstallEntities(sc.Entities)

	// Feed 80% of the stream; the remaining 20% is the hidden future the
	// forecasts are scored against.
	cut := len(sc.WireTimed) * 8 / 10
	for _, tl := range sc.WireTimed[:cut] {
		if _, err := p.IngestLine(tl); err != nil {
			log.Fatal(err)
		}
	}
	routeCells, knnPts := p.ForecastHub.ModelStats()
	fmt.Printf("ingested %d lines; hub: %d entities, %d reports observed\n",
		cut, p.ForecastHub.Entities(), p.ForecastHub.Observed())
	fmt.Printf("stream-trained models: %d route cells, %d knn points\n\n", routeCells, knnPts)

	// Forecast every live entity at three horizons and score against truth.
	for _, horizon := range []time.Duration{5 * time.Minute, 10 * time.Minute, 20 * time.Minute} {
		all, err := p.ForecastHub.ForecastAll(horizon)
		if err != nil {
			log.Fatal(err)
		}
		sort.Slice(all, func(i, j int) bool { return all[i].Entity < all[j].Entity })
		var sum float64
		n := 0
		byMethod := map[string]int{}
		for _, f := range all {
			tr := sc.Truth[f.Entity]
			if tr == nil || f.TS > tr.End() {
				continue
			}
			actual, ok := tr.At(f.TS)
			if !ok {
				continue
			}
			sum += geo.Haversine(f.Pt, actual.Pt)
			n++
			byMethod[f.Method]++
		}
		if n == 0 {
			continue
		}
		fmt.Printf("horizon %-4v mean error %6.0f m over %2d entities (methods: %v)\n",
			horizon, sum/float64(n), n, byMethod)
	}

	// One entity in detail: the serving response shape.
	all, err := p.ForecastHub.ForecastAll(10 * time.Minute)
	if err != nil || len(all) == 0 {
		log.Fatal("no live entities")
	}
	sort.Slice(all, func(i, j int) bool { return all[i].Entity < all[j].Entity })
	f := all[0]
	fmt.Printf("\nGET /forecast?entity=%s&horizon=10m →\n", f.Entity)
	fmt.Printf("  method=%s pt=(%.4f, %.4f) radius=%.0fm history=%d eventProb=%.2f\n\n",
		f.Method, f.Pt.Lon, f.Pt.Lat, f.RadiusM, f.HistoryLen, f.EventProb)

	// Durability: snapshot, recover, forecast again — identically.
	dataDir, err := os.MkdirTemp("", "datacron-forecast-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dataDir)
	walLog, err := wal.Open(core.WALDir(dataDir), wal.Options{NoSync: true})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := p.WriteSnapshot(dataDir, nil, walLog); err != nil {
		log.Fatal(err)
	}
	walLog.Close()

	p2 := core.New(cfg)
	p2.InstallAreas(sc.Areas)
	p2.InstallEntities(sc.Entities)
	if _, err := p2.Recover(dataDir); err != nil {
		log.Fatal(err)
	}
	g, err := p2.ForecastHub.Forecast(f.Entity, 10*time.Minute)
	if err != nil {
		log.Fatal(err)
	}
	if g == f {
		fmt.Println("recovered pipeline forecasts identically: kill -9 loses no forecast state")
	} else {
		fmt.Printf("MISMATCH after recovery:\n  %+v\n  %+v\n", f, g)
	}
}
