package datacron

// The benchmark harness regenerates every experiment defined in DESIGN.md
// §4 (the paper has no numbered tables/figures; each experiment reifies one
// verbatim architecture claim — see EXPERIMENTS.md for the recorded
// results). Each benchmark runs the full-scale experiment and prints its
// result table once:
//
//	go test -bench=. -benchmem
//
// Individual experiments: go test -bench=BenchmarkE3 -benchtime=1x

import (
	"fmt"
	"sync"
	"testing"

	"github.com/datacron-project/datacron/internal/experiments"
)

// printedTables ensures each experiment table is printed once even when
// the benchmark framework loops.
var printedTables sync.Map

// runExperiment executes one experiment per benchmark iteration, printing
// the resulting table on the first execution.
func runExperiment(b *testing.B, fn func(quick bool) *experiments.Table) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tab := fn(false)
		if _, dup := printedTables.LoadOrStore(tab.ID, true); !dup {
			fmt.Printf("\n%s\n", tab)
		}
	}
}

// BenchmarkE1Compression regenerates E1: in-situ compression ratio vs SED
// error vs analytics quality ("high rates of data compression without
// affecting the quality of analytics", §2).
func BenchmarkE1Compression(b *testing.B) { runExperiment(b, experiments.E1Compression) }

// BenchmarkE2StreamThroughput regenerates E2: primitive operator throughput
// on streams ("applied directly on the data streams", §2).
func BenchmarkE2StreamThroughput(b *testing.B) { runExperiment(b, experiments.E2StreamThroughput) }

// BenchmarkE3Partitioning regenerates E3: partitioner balance, latency and
// pruning ("sophisticated RDF partitioning algorithms", §2).
func BenchmarkE3Partitioning(b *testing.B) { runExperiment(b, experiments.E3Partitioning) }

// BenchmarkE4ParallelQuery regenerates E4: query speedup with workers
// ("parallel query processing techniques", §2).
func BenchmarkE4ParallelQuery(b *testing.B) { runExperiment(b, experiments.E4ParallelQuery) }

// BenchmarkE5LinkDiscovery regenerates E5: naive vs blocked link discovery
// ("automatically computing associations", §2).
func BenchmarkE5LinkDiscovery(b *testing.B) { runExperiment(b, experiments.E5LinkDiscovery) }

// BenchmarkE6TrajForecast regenerates E6: trajectory forecasting error by
// horizon in both domains ("forecasting of moving entities' trajectories
// in the challenging Maritime (2D) and Aviation (3D) domains", §1).
func BenchmarkE6TrajForecast(b *testing.B) { runExperiment(b, experiments.E6TrajForecast) }

// BenchmarkE7EventRecognition regenerates E7: CER quality and millisecond
// latency ("recognition ... of complex events", §1; "latency ... in ms", §4).
func BenchmarkE7EventRecognition(b *testing.B) { runExperiment(b, experiments.E7EventRecognition) }

// BenchmarkE8EventForecast regenerates E8: pattern-completion forecasting
// ("forecasting of complex events and patterns", §1).
func BenchmarkE8EventForecast(b *testing.B) { runExperiment(b, experiments.E8EventForecast) }

// BenchmarkE9Hotspots regenerates E9: hotspot/capacity-demand detection
// ("prediction of ... capacity demand, hot spots / paths", §1).
func BenchmarkE9Hotspots(b *testing.B) { runExperiment(b, experiments.E9Hotspots) }

// BenchmarkE10EndToEnd regenerates E10: the full wire-to-analytics pipeline
// latency budget ("coherent Big Data solution", §2, under ms latency, §4).
func BenchmarkE10EndToEnd(b *testing.B) { runExperiment(b, experiments.E10EndToEnd) }

// BenchmarkE14Synopses regenerates E14: trajectory-synopsis compression
// ratio vs reconstruction RMSE and the tap's ingest overhead ("high rates
// of data compression without affecting the quality of analytics", §2 — the
// synopses half of the claim).
func BenchmarkE14Synopses(b *testing.B) { runExperiment(b, experiments.E14Synopses) }

// BenchmarkE15Observability regenerates E15: the ingest-path cost of
// sampled stage tracing (bar: default sampling < 5% over the untraced
// baseline) with the per-stage latency breakdown the tracer buys.
func BenchmarkE15Observability(b *testing.B) { runExperiment(b, experiments.E15Observability) }
