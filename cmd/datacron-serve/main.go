// datacron-serve runs the datAcron online serving daemon: a long-running
// HTTP server that ingests raw AIS/SBS wire lines into the parallel
// spatiotemporal RDF store while answering queries and streaming recognised
// complex events — the paper's online architecture as a service.
//
//	datacron-serve -addr :8080 -domain maritime -shards 8 -workers 8
//	datacron-gen -domain maritime -out aegean
//	curl -X POST --data-binary @aegean.wire localhost:8080/ingest
//	curl -X POST -d 'SELECT ?v WHERE { ?v rdf:type dat:Vessel . }' localhost:8080/query
//	curl -N localhost:8080/events
//	curl localhost:8080/metrics
//
// By default the daemon primes the world (areas of interest and entity
// registry) from the same deterministic generator datacron-gen uses, so a
// generated wire file POSTed to /ingest produces the scripted complex
// events. Use -prime=false for a blank world that learns entities from the
// stream alone.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os/signal"
	"syscall"
	"time"

	"github.com/datacron-project/datacron/internal/core"
	"github.com/datacron-project/datacron/internal/model"
	"github.com/datacron-project/datacron/internal/server"
	"github.com/datacron-project/datacron/internal/synth"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("datacron-serve: ")
	var (
		addr    = flag.String("addr", ":8080", "listen address")
		domain  = flag.String("domain", "maritime", "maritime or aviation")
		shards  = flag.Int("shards", 4, "store shard count")
		workers = flag.Int("workers", 0, "ingest worker goroutines (0 = GOMAXPROCS)")
		queue   = flag.Int("queue", 8192, "per-worker ingest queue bound (full = HTTP 429)")
		prime   = flag.Bool("prime", true, "pre-install the generator's areas and entities")
		seed    = flag.Int64("seed", 42, "world seed used when priming (match datacron-gen)")
		vessels = flag.Int("vessels", 50, "world vessel count when priming (maritime)")
		flights = flag.Int("flights", 40, "world flight count when priming (aviation)")
	)
	flag.Parse()

	dom := model.Maritime
	if *domain == "aviation" {
		dom = model.Aviation
	} else if *domain != "maritime" {
		log.Fatalf("unknown domain %q", *domain)
	}
	p := core.New(core.Config{Domain: dom, Shards: *shards})
	if *prime {
		// A minimal-duration scenario carries the full area set and entity
		// registry without generating traffic.
		var sc *synth.Scenario
		if dom == model.Maritime {
			sc = synth.GenMaritime(synth.MaritimeConfig{Seed: *seed, Vessels: *vessels, Duration: time.Minute})
		} else {
			sc = synth.GenAviation(synth.AviationConfig{Seed: *seed, Flights: *flights, Duration: time.Minute})
		}
		p.InstallAreas(sc.Areas)
		p.InstallEntities(sc.Entities)
		log.Printf("primed %s world: %d areas, %d entities", dom, len(sc.Areas), len(sc.Entities))
	}

	srv := server.New(server.Config{Pipeline: p, Workers: *workers, QueueLen: *queue})
	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		log.Print("shutting down")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = httpSrv.Shutdown(shutdownCtx)
	}()

	log.Printf("serving %s on %s (shards=%d workers=%d queue=%d)",
		dom, *addr, *shards, srv.Ingestor().Workers(), *queue)
	log.Printf("endpoints: POST /ingest, POST /query, GET /range, GET /events, GET /healthz, GET /metrics")
	if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
	srv.Close()
	log.Print(p.Report())
}
