// datacron-serve runs the datAcron online serving daemon: a long-running
// HTTP server that ingests raw AIS/SBS wire lines into the parallel
// spatiotemporal RDF store while answering queries and streaming recognised
// complex events — the paper's online architecture as a service.
//
//	datacron-serve -addr :8080 -domain maritime -shards 8 -workers 8
//	datacron-gen -domain maritime -out aegean
//	curl -X POST --data-binary @aegean.wire localhost:8080/ingest
//	curl -X POST -d 'SELECT ?v WHERE { ?v rdf:type dat:Vessel . }' localhost:8080/query
//	curl 'localhost:8080/forecast?entity=237000001&horizon=10m'
//	curl 'localhost:8080/forecast/batch?horizon=5m'
//	curl -N localhost:8080/events
//	curl localhost:8080/metrics
//
// Online forecasting (-forecast, on by default) keeps warm per-entity
// kinematic history and incrementally trains the shared route-network, KNN
// and Markov models from the live stream; GET /forecast extrapolates an
// entity's future location (method-tagged: dead-reckoning → kinematic →
// route/KNN by history length) and -forecast-interval streams periodic
// "forecast" SSE frames on /events. Forecast state is part of snapshots
// and survives kill -9.
//
// Online trajectory synopses (-synopses, on by default) compress the gated
// stream into per-entity critical points (stop, turn, speed change, gap
// start/end — thresholds flag- and domain-configurable): GET /synopses/{id}
// serves one entity's synopsis, GET /synopses/batch the fleet summary with
// the raw-vs-critical compression statistics, and -synopses-interval
// streams newly detected points as "synopsis" SSE frames. Synopsis state is
// part of snapshots and survives kill -9. -forecast-synopsis-history feeds
// the forecast hub from the compressed stream instead of the raw one.
//
// Observability (see OPERATIONS.md "Observability"): logs are structured
// (log/slog, -log-level / -log-format json), every request carries an
// X-Request-ID, sampled per-line pipeline spans are served at
// GET /debug/trace (-trace-sample, 0 = off), slow queries at
// GET /debug/slowlog (-slow-query threshold), and -debug-addr starts a
// separate pprof listener. The daemon binds -addr immediately but
// GET /readyz answers 503 until recovery finishes; /healthz is pure
// liveness.
//
// By default the daemon primes the world (areas of interest and entity
// registry) from the same deterministic generator datacron-gen uses, so a
// generated wire file POSTed to /ingest produces the scripted complex
// events. Use -prime=false for a blank world that learns entities from the
// stream alone.
//
// With -cluster the daemon becomes one node of a multi-node cluster (see
// OPERATIONS.md "Cluster mode" and DESIGN.md §14): -peers lists the static
// membership, -advertise is this node's address as the peers reach it, and
// every node owns a consistent-hash slice of the entity-key space. Any node
// coordinates: POST /ingest routes each line to its owner over the binary
// wire framing, POST /query, GET /forecast/batch and GET /synopses/batch
// scatter-gather with results identical to a single node, and POST
// /cluster/join / /cluster/leave rebalance hash ranges by shipping sealed
// segments plus the head tail between nodes:
//
//	datacron-serve -addr :8080 -cluster -advertise 10.0.0.1:8080 \
//	  -peers 10.0.0.1:8080,10.0.0.2:8080,10.0.0.3:8080 -data-dir /var/lib/datacron
//
// With -data-dir the daemon is durable: accepted wire lines are written to
// a write-ahead log and group-committed before the HTTP ack, POST
// /snapshot persists the full pipeline state, and a restart with the same
// -data-dir recovers by loading the newest snapshot and replaying the log
// tail — kill -9 mid-ingest loses no acknowledged line:
//
//	datacron-serve -addr :8080 -data-dir /var/lib/datacron
//	curl -X POST localhost:8080/snapshot
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/datacron-project/datacron/internal/cluster"
	"github.com/datacron-project/datacron/internal/core"
	"github.com/datacron-project/datacron/internal/model"
	"github.com/datacron-project/datacron/internal/obs"
	"github.com/datacron-project/datacron/internal/server"
	"github.com/datacron-project/datacron/internal/store"
	"github.com/datacron-project/datacron/internal/synopses"
	"github.com/datacron-project/datacron/internal/synth"
	"github.com/datacron-project/datacron/internal/wal"
)

func main() {
	var (
		addr    = flag.String("addr", ":8080", "listen address")
		domain  = flag.String("domain", "maritime", "maritime or aviation")
		shards  = flag.Int("shards", 4, "store shard count")
		workers = flag.Int("workers", 0, "ingest worker goroutines (0 = GOMAXPROCS)")
		queue   = flag.Int("queue", 8192, "per-worker ingest queue bound (full = HTTP 429)")
		drain   = flag.Int("ingest-batch-drain", core.DefaultBatchDrain, "max queued lines an ingest worker drains and applies as one atomic batch (1 = line-at-a-time)")
		prime   = flag.Bool("prime", true, "pre-install the generator's areas and entities")
		seed    = flag.Int64("seed", 42, "world seed used when priming (match datacron-gen)")
		vessels = flag.Int("vessels", 50, "world vessel count when priming (maritime)")
		flights = flag.Int("flights", 40, "world flight count when priming (aviation)")
		dataDir = flag.String("data-dir", "", "durability directory (WAL + snapshots); empty = in-memory only")

		clusterOn = flag.Bool("cluster", false, "cluster mode: own a consistent-hash slice of the entity space, forward and scatter-gather the rest (see -peers, -advertise)")
		peers     = flag.String("peers", "", "comma-separated static member addresses (host:port), including this node")
		advertise = flag.String("advertise", "", "this node's address as peers reach it (default: -addr when it carries a host)")
		vnodes    = flag.Int("vnodes", 0, "consistent-hash virtual nodes per member (0 = default)")

		fsync = flag.Bool("fsync", false, "fsync the WAL on every commit: survives power loss, not just kill -9 (default flushes to the OS, which a process crash cannot lose)")
		segMB = flag.Int64("segment-mb", 64, "WAL segment roll size in MiB")

		logLevel  = flag.String("log-level", "info", "log level: debug, info, warn, error")
		logFormat = flag.String("log-format", "text", "log format: text or json")
		debugAddr = flag.String("debug-addr", "", "separate pprof/debug listen address (empty = off); never expose publicly")
		traceEv   = flag.Int("trace-sample", obs.DefaultSampleEvery, "trace every Nth ingest line through the pipeline stages (GET /debug/trace; 0 = tracing off)")
		traceRing = flag.Int("trace-ring", obs.DefaultTraceRing, "bounded span ring size for GET /debug/trace")
		slowQuery = flag.Duration("slow-query", obs.DefaultSlowQuery, "log queries at or over this duration with their plan facts (GET /debug/slowlog; negative = off)")

		sealTriples = flag.Int("seal-triples", 250_000, "seal a shard head into an immutable segment once it holds this many triples (0 = no size trigger)")
		sealAfter   = flag.Duration("seal-after", 0, "seal a shard head once its oldest anchor is this much older than the stream clock (0 = no age trigger)")
		retention   = flag.Duration("retention", 0, "drop sealed segments whose newest anchor is older than the stream clock minus this window (0 = keep forever)")
		maintainEv  = flag.Duration("maintain-interval", 15*time.Second, "background tier-maintenance cadence (0 = only POST /seal maintains)")

		fcast         = flag.Bool("forecast", true, "online forecasting: serve GET /forecast and /forecast/batch")
		fcastGrid     = flag.Int("forecast-grid", 96, "route-network/KNN grid resolution (cells per side)")
		fcastHistory  = flag.Int("forecast-history", 32, "per-entity kinematic history ring (reports)")
		fcastHorizon  = flag.Duration("forecast-horizon", time.Hour, "maximum accepted forecast horizon")
		fcastInterval = flag.Duration("forecast-interval", 0, "publish SSE \"forecast\" frames for all live entities at this interval (0 = off)")
		fcastSynopsis = flag.Bool("forecast-synopsis-history", false, "feed the forecast hub only critical points (model memory scales with the synopsis, not the raw stream)")

		synOn       = flag.Bool("synopses", true, "online trajectory synopses: serve GET /synopses/{id} and /synopses/batch")
		synRing     = flag.Int("synopses-ring", 512, "per-entity critical point ring (points)")
		synStop     = flag.Float64("synopses-stop-speed", 0, "stop detection speed threshold in m/s (0 = domain default)")
		synStopDur  = flag.Duration("synopses-stop-duration", 0, "sustained low speed before a stop point emits (0 = domain default)")
		synTurn     = flag.Float64("synopses-turn-deg", 0, "cumulative course change that emits a turn point (0 = domain default)")
		synSpeed    = flag.Float64("synopses-speed-frac", 0, "fractional speed change that emits a speed-change point (0 = domain default)")
		synGap      = flag.Duration("synopses-gap", 0, "report silence that emits gap-start/gap-end points (0 = domain default)")
		synInterval = flag.Duration("synopses-interval", 0, "publish SSE \"synopsis\" frames for newly detected critical points at this interval (0 = off)")
	)
	flag.Parse()

	logger := obs.NewLogger(os.Stderr, *logLevel, *logFormat)
	fatal := func(msg string, err error) {
		logger.Error(msg, "err", err)
		os.Exit(1)
	}

	dom := model.Maritime
	if *domain == "aviation" {
		dom = model.Aviation
	} else if *domain != "maritime" {
		fatal("unknown domain", fmt.Errorf("%q (want maritime or aviation)", *domain))
	}
	p := core.New(core.Config{
		Domain: dom, Shards: *shards,
		Trace: obs.TraceConfig{
			Enabled:     *traceEv > 0,
			SampleEvery: *traceEv,
			RingSize:    *traceRing,
		},
		Forecast: core.ForecastConfig{
			Enabled:         *fcast,
			GridCols:        *fcastGrid,
			GridRows:        *fcastGrid,
			HistoryLen:      *fcastHistory,
			MaxHorizon:      *fcastHorizon,
			SynopsisHistory: *fcastSynopsis,
		},
		Synopses: core.SynopsesConfig{
			Enabled: *synOn,
			RingLen: *synRing,
			Thresholds: synopses.Config{
				StopSpeedMS:     *synStop,
				StopMinDuration: *synStopDur,
				TurnDeg:         *synTurn,
				SpeedDeltaFrac:  *synSpeed,
				GapDuration:     *synGap,
			},
		},
	})

	// Bind the listener before the (possibly long) recovery replay so probes
	// get answers immediately: /healthz says the process is alive, /readyz
	// says 503 starting until the swap below. The SwitchHandler atomically
	// replaces this bootstrap surface with the full API once recovery is
	// done.
	ready := obs.NewReadiness("recovering: snapshot load + wal replay")
	sw := &obs.SwitchHandler{}
	boot := http.NewServeMux()
	boot.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write([]byte(`{"status":"ok","phase":"starting"}` + "\n"))
	})
	boot.Handle("GET /readyz", ready)
	sw.Set(boot)
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal("listen", err)
	}
	httpSrv := &http.Server{Handler: sw}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	if *debugAddr != "" {
		// pprof gets its own mux on its own listener so profiling is never
		// reachable through the public port.
		dbg := http.NewServeMux()
		dbg.HandleFunc("/debug/pprof/", pprof.Index)
		dbg.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		dbg.HandleFunc("/debug/pprof/profile", pprof.Profile)
		dbg.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		dbg.HandleFunc("/debug/pprof/trace", pprof.Trace)
		go func() {
			logger.Info("pprof listening", "component", "debug", "addr", *debugAddr)
			if err := http.ListenAndServe(*debugAddr, dbg); err != nil {
				logger.Error("pprof listener failed", "component", "debug", "err", err)
			}
		}()
	}

	if *prime {
		// A minimal-duration scenario carries the full area set and entity
		// registry without generating traffic.
		var sc *synth.Scenario
		if dom == model.Maritime {
			sc = synth.GenMaritime(synth.MaritimeConfig{Seed: *seed, Vessels: *vessels, Duration: time.Minute})
		} else {
			sc = synth.GenAviation(synth.AviationConfig{Seed: *seed, Flights: *flights, Duration: time.Minute})
		}
		p.InstallAreas(sc.Areas)
		p.InstallEntities(sc.Entities)
		logger.Info("primed world", "domain", dom.String(), "areas", len(sc.Areas), "entities", len(sc.Entities))
	}

	// Durable mode: recover (snapshot + WAL tail) before serving, then
	// open the log for appending.
	var (
		walLog   *wal.Log
		recovery *core.RecoveryStats
	)
	if *dataDir != "" {
		rlog := obs.Component(logger, "recovery")
		rs, err := p.Recover(*dataDir)
		if err != nil {
			fatal("recovery failed", err)
		}
		recovery = &rs
		rlog.Info("recovered",
			"snapshotLSN", rs.SnapshotLSN, "snapshotTriples", rs.SnapshotTriples,
			"snapshotAnchors", rs.SnapshotAnchors, "replayed", rs.Replayed,
			"skippedApplied", rs.SkippedApplied, "events", rs.Events,
			"took", rs.Took.Round(time.Millisecond))
		if rs.TailTruncatedBytes > 0 {
			rlog.Info("dropped torn bytes at the log tail (unacknowledged partial write)",
				"bytes", rs.TailTruncatedBytes)
		}
		if rs.CorruptStopped {
			rlog.Warn("mid-log corruption: stopped at the last valid record",
				"skippedBytes", rs.SkippedBytes)
		}
		var err2 error
		walLog, err2 = wal.Open(core.WALDir(*dataDir), wal.Options{
			SegmentBytes: *segMB << 20,
			NoSync:       !*fsync,
		})
		if err2 != nil {
			fatal("open wal", err2)
		}
		defer walLog.Close()
		if rs.CorruptStopped {
			// Replay can never get past the damaged record, so lines acked
			// from here on would be unrecoverable on the next restart.
			// Seal the damaged log: snapshot the recovered state with a
			// replay floor beyond the whole existing log, so future acks
			// are durable again. The skipped suffix is already lost to the
			// disk damage either way.
			info, err := p.WriteSnapshot(*dataDir, nil, walLog)
			if err != nil {
				fatal("cannot seal corrupt log with a snapshot — refusing to serve durably", err)
			}
			rlog.Info("sealed corrupt log", "snapshotLSN", info.CutLSN, "replayFloor", info.ReplayFrom)
		}
	}

	// In cluster mode the node's gauges ride on /metrics; the indirection
	// exists because the cluster node wraps the server it reports for.
	var cnode *cluster.Node
	srv := server.New(server.Config{
		Pipeline: p, Workers: *workers, QueueLen: *queue, BatchDrain: *drain,
		WAL: walLog, DataDir: *dataDir, Recovery: recovery,
		ExtraMetrics: func(mw *obs.MetricsWriter) {
			if cnode != nil {
				cnode.WriteMetrics(mw)
			}
		},
		ForecastInterval: *fcastInterval,
		SynopsesInterval: *synInterval,
		Tier: store.TierPolicy{
			SealTriples: *sealTriples,
			SealAfter:   *sealAfter,
			Retention:   *retention,
		},
		MaintainInterval: *maintainEv,
		Logger:           obs.Component(logger, "server"),
		Readiness:        ready,
		SlowQuery:        *slowQuery,
	})

	// Swap the bootstrap surface for the full API and open the gate: from
	// here /readyz says ready and load balancers may admit traffic.
	handler := srv.Handler()
	if *clusterOn {
		self := *advertise
		if self == "" {
			if host, _, err := net.SplitHostPort(*addr); err != nil || host == "" {
				fatal("cluster mode", fmt.Errorf("-advertise is required when -addr (%q) carries no host", *addr))
			}
			self = *addr
		}
		var members []string
		for _, m := range strings.Split(*peers, ",") {
			if m = strings.TrimSpace(m); m != "" {
				members = append(members, m)
			}
		}
		var cerr error
		cnode, cerr = cluster.New(cluster.Config{
			Self:     self,
			Members:  members,
			VNodes:   *vnodes,
			Server:   srv,
			Pipeline: p,
			Logger:   obs.Component(logger, "cluster"),
			Client:   &http.Client{Timeout: 30 * time.Second},
		})
		if cerr != nil {
			fatal("cluster mode", cerr)
		}
		handler = cnode
		ring, version := cnode.Ring()
		logger.Info("cluster mode",
			"self", self, "members", len(ring.Members()),
			"vnodes", ring.VNodes(), "ringVersion", version,
			"fingerprint", fmt.Sprintf("%016x", ring.Fingerprint()))
	}
	sw.Set(handler)
	ready.MarkReady()

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		// Fail readiness first so balancers drain before in-flight requests
		// are cut off.
		ready.SetNotReady("shutting down")
		logger.Info("shutting down")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = httpSrv.Shutdown(shutdownCtx)
	}()

	durable := "in-memory"
	if *dataDir != "" {
		durable = "data-dir=" + *dataDir
	}
	logger.Info("serving",
		"domain", dom.String(), "addr", *addr,
		"shards", *shards, "workers", srv.Ingestor().Workers(), "queue", *queue,
		"durability", durable, "traceSample", *traceEv, "slowQuery", *slowQuery)
	logger.Debug("endpoints: POST /ingest, POST /query, GET /range, GET /events, GET /forecast, GET /forecast/batch, GET /synopses/{id}, GET /synopses/batch, POST /snapshot, POST /seal, GET /healthz, GET /readyz, GET /metrics, GET /debug/trace, GET /debug/slowlog")
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		fatal("serve", err)
	}
	srv.Close()
	fmt.Fprintln(os.Stderr, p.Report())
}
