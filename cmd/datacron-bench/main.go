// datacron-bench runs the experiment suite E1–E15 (DESIGN.md §4) and prints
// every result table; use it to regenerate the numbers in EXPERIMENTS.md.
//
//	datacron-bench            # full scale (minutes)
//	datacron-bench -quick     # test scale (seconds)
//	datacron-bench -only E3,E6
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"
	"time"

	"github.com/datacron-project/datacron/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("datacron-bench: ")
	var (
		quick = flag.Bool("quick", false, "run test-scale workloads")
		only  = flag.String("only", "", "comma-separated experiment ids (e.g. E1,E6); empty = all")
	)
	flag.Parse()

	want := map[string]bool{}
	for _, id := range strings.Split(*only, ",") {
		if id = strings.TrimSpace(strings.ToUpper(id)); id != "" {
			want[id] = true
		}
	}

	all := []struct {
		id string
		fn func(bool) *experiments.Table
	}{
		{"E1", experiments.E1Compression},
		{"E2", experiments.E2StreamThroughput},
		{"E3", experiments.E3Partitioning},
		{"E4", experiments.E4ParallelQuery},
		{"E5", experiments.E5LinkDiscovery},
		{"E6", experiments.E6TrajForecast},
		{"E7", experiments.E7EventRecognition},
		{"E8", experiments.E8EventForecast},
		{"E9", experiments.E9Hotspots},
		{"E10", experiments.E10EndToEnd},
		{"E11", experiments.E11Durability},
		{"E12", experiments.E12OnlineForecast},
		{"E13", experiments.E13Tiering},
		{"E14", experiments.E14Synopses},
		{"E15", experiments.E15Observability},
	}
	for _, e := range all {
		if len(want) > 0 && !want[e.id] {
			continue
		}
		start := time.Now()
		tab := e.fn(*quick)
		fmt.Printf("%s\n(%s in %v)\n\n", tab, e.id, time.Since(start).Round(time.Millisecond))
	}
}
