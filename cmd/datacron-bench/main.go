// datacron-bench runs the experiment suite E1–E15 (DESIGN.md §4) and prints
// every result table; use it to regenerate the numbers in EXPERIMENTS.md.
//
//	datacron-bench            # full scale (minutes)
//	datacron-bench -quick     # test scale (seconds)
//	datacron-bench -only E3,E6
//
// With -ingest-url it is instead a load driver against a live daemon's
// POST /ingest, in either wire format:
//
//	datacron-bench -ingest-url http://localhost:8080 -ingest-format binary \
//	  -ingest-lines 500000 -ingest-batch 512
//
// Against a cluster, pass every coordinator comma-separated and the driver
// round-robins batches across them (any node coordinates, so this spreads
// the routing work, not just the ingest):
//
//	datacron-bench -ingest-url http://10.0.0.1:8080,http://10.0.0.2:8080
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"strings"
	"time"

	"github.com/datacron-project/datacron/internal/experiments"
	"github.com/datacron-project/datacron/internal/synth"
	"github.com/datacron-project/datacron/internal/wire"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("datacron-bench: ")
	var (
		quick = flag.Bool("quick", false, "run test-scale workloads")
		only  = flag.String("only", "", "comma-separated experiment ids (e.g. E1,E6); empty = all")

		ingestURL    = flag.String("ingest-url", "", "drive POST /ingest on this base URL instead of running experiments; comma-separate several to round-robin cluster coordinators")
		ingestFormat = flag.String("ingest-format", "text", "ingest wire format: text | binary")
		ingestLines  = flag.Int("ingest-lines", 200_000, "total lines to post (-ingest-url mode)")
		ingestBatch  = flag.Int("ingest-batch", 512, "lines per request (-ingest-url mode)")
	)
	flag.Parse()

	if *ingestURL != "" {
		if err := runIngestDriver(*ingestURL, *ingestFormat, *ingestLines, *ingestBatch); err != nil {
			log.Fatal(err)
		}
		return
	}

	want := map[string]bool{}
	for _, id := range strings.Split(*only, ",") {
		if id = strings.TrimSpace(strings.ToUpper(id)); id != "" {
			want[id] = true
		}
	}

	all := []struct {
		id string
		fn func(bool) *experiments.Table
	}{
		{"E1", experiments.E1Compression},
		{"E2", experiments.E2StreamThroughput},
		{"E3", experiments.E3Partitioning},
		{"E4", experiments.E4ParallelQuery},
		{"E5", experiments.E5LinkDiscovery},
		{"E6", experiments.E6TrajForecast},
		{"E7", experiments.E7EventRecognition},
		{"E8", experiments.E8EventForecast},
		{"E9", experiments.E9Hotspots},
		{"E10", experiments.E10EndToEnd},
		{"E11", experiments.E11Durability},
		{"E12", experiments.E12OnlineForecast},
		{"E13", experiments.E13Tiering},
		{"E14", experiments.E14Synopses},
		{"E15", experiments.E15Observability},
	}
	for _, e := range all {
		if len(want) > 0 && !want[e.id] {
			continue
		}
		start := time.Now()
		tab := e.fn(*quick)
		fmt.Printf("%s\n(%s in %v)\n\n", tab, e.id, time.Since(start).Round(time.Millisecond))
	}
}

// runIngestDriver posts a synthetic AIS wire stream to a live daemon's
// POST /ingest and reports sustained lines/sec. The same pre-rendered
// batches drive both formats, so a text-vs-binary pair of runs against the
// same daemon isolates the wire-format cost.
func runIngestDriver(baseURL, format string, lines, batch int) error {
	if batch <= 0 || lines <= 0 {
		return fmt.Errorf("-ingest-lines and -ingest-batch must be positive")
	}
	var contentType string
	switch format {
	case "text":
		contentType = "text/plain"
	case "binary":
		contentType = wire.ContentType
	default:
		return fmt.Errorf("-ingest-format %q: want text or binary", format)
	}

	log.Printf("rendering %s batches of %d lines", format, batch)
	sc := synth.GenMaritime(synth.MaritimeConfig{Seed: 99, Vessels: 40, Duration: 2 * time.Hour})
	var bodies []string
	for i := 0; i < len(sc.WireTimed); i += batch {
		end := i + batch
		if end > len(sc.WireTimed) {
			end = len(sc.WireTimed)
		}
		tls := sc.WireTimed[i:end]
		if format == "binary" {
			var e wire.Encoder
			for _, tl := range tls {
				e.Add(tl.TS, tl.Line)
			}
			bodies = append(bodies, string(e.AppendFrame(nil)))
		} else {
			var b strings.Builder
			for _, tl := range tls {
				fmt.Fprintf(&b, "%d %s\n", tl.TS, tl.Line)
			}
			bodies = append(bodies, b.String())
		}
	}

	client := &http.Client{Timeout: 30 * time.Second}
	var urls []string
	for _, u := range strings.Split(baseURL, ",") {
		if u = strings.TrimSpace(u); u != "" {
			urls = append(urls, strings.TrimRight(u, "/")+"/ingest")
		}
	}
	if len(urls) == 0 {
		return fmt.Errorf("-ingest-url is empty")
	}
	var accepted, rejected, requests int
	start := time.Now()
	for sent := 0; sent < lines; {
		body := bodies[requests%len(bodies)]
		n := batch
		if requests%len(bodies) == len(bodies)-1 {
			n = len(sc.WireTimed) - (len(bodies)-1)*batch
		}
		resp, err := client.Post(urls[requests%len(urls)], contentType, strings.NewReader(body))
		if err != nil {
			return fmt.Errorf("post: %w", err)
		}
		var ir struct {
			Accepted int    `json:"accepted"`
			Rejected int    `json:"rejected"`
			Error    string `json:"error,omitempty"`
		}
		err = json.NewDecoder(resp.Body).Decode(&ir)
		resp.Body.Close()
		if err != nil {
			return fmt.Errorf("decode response (status %d): %w", resp.StatusCode, err)
		}
		if ir.Error != "" {
			return fmt.Errorf("server: %s", ir.Error)
		}
		requests++
		accepted += ir.Accepted
		rejected += ir.Rejected
		sent += n
		if resp.StatusCode == http.StatusTooManyRequests {
			time.Sleep(50 * time.Millisecond)
		}
	}
	el := time.Since(start)
	log.Printf("%s: %d requests, %d accepted, %d rejected in %v — %.0f lines/sec",
		format, requests, accepted, rejected, el.Round(time.Millisecond),
		float64(accepted)/el.Seconds())
	return nil
}
