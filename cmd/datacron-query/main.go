// datacron-query loads a generated wire dataset into the parallel RDF
// store and runs ad-hoc stSPARQL-lite queries against it.
//
//	datacron-gen -domain maritime -out aegean
//	datacron-query -wire aegean.wire -query 'SELECT ?v WHERE { ?v rdf:type dat:Vessel . } LIMIT 5'
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	"github.com/datacron-project/datacron/internal/core"
	"github.com/datacron-project/datacron/internal/model"
	"github.com/datacron-project/datacron/internal/obs"
	"github.com/datacron-project/datacron/internal/query"
	"github.com/datacron-project/datacron/internal/synth"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("datacron-query: ")
	var (
		wirePath = flag.String("wire", "", "wire file from datacron-gen (\"<ts> <line>\" per row)")
		domain   = flag.String("domain", "maritime", "maritime or aviation")
		q        = flag.String("query", "", "stSPARQL-lite query; empty drops into a demo query")
		shards   = flag.Int("shards", 4, "store shard count")
		explain  = flag.Bool("explain", false, "print the physical plan without executing")
	)
	flag.Parse()
	if *wirePath == "" {
		log.Fatal("-wire is required (generate one with datacron-gen)")
	}

	dom := model.Maritime
	if *domain == "aviation" {
		dom = model.Aviation
	}
	p := core.New(core.Config{Domain: dom, Shards: *shards})

	f, err := os.Open(*wirePath)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	lines := 0
	for sc.Scan() {
		row := sc.Text()
		sp := strings.IndexByte(row, ' ')
		if sp < 0 {
			continue
		}
		ts, err := strconv.ParseInt(row[:sp], 10, 64)
		if err != nil {
			log.Fatalf("bad timestamp on line %d: %v", lines+1, err)
		}
		if _, err := p.IngestLine(synth.TimedLine{TS: ts, Line: row[sp+1:]}); err != nil {
			log.Fatalf("line %d: %v", lines+1, err)
		}
		lines++
	}
	if err := sc.Err(); err != nil {
		log.Fatal(err)
	}
	log.Printf("ingested %d lines: %s", lines, p.Report())

	src := *q
	if src == "" {
		src = `SELECT ?v ?name WHERE { ?v rdf:type dat:Vessel . ?v dat:name ?name . } LIMIT 10`
		log.Printf("no -query given; running demo: %s", src)
	}
	if *explain {
		// Lower to the physical operator chain without executing — the same
		// renderer the slow-query log uses (row counts print only after an
		// execution, so -explain shows the shape and the scan's real
		// shard-pruning facts from the loaded store).
		parsed, perr := query.Parse(src)
		if perr != nil {
			log.Fatal(perr)
		}
		fmt.Print(obs.FormatPlanStages(p.Engine.Explain(parsed)))
		return
	}
	res, err := p.Engine.Execute(src)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(query.FormatTable(res))
}
