// datacron-gen generates synthetic surveillance datasets: AIS AIVDM
// sentences (maritime) or SBS-1 BaseStation lines (aviation) plus a
// ground-truth event log, to stdout or files.
//
//	datacron-gen -domain maritime -vessels 100 -minutes 120 -out aegean
//	datacron-gen -domain aviation -flights 50 -minutes 60
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"github.com/datacron-project/datacron/internal/synth"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("datacron-gen: ")
	var (
		domain  = flag.String("domain", "maritime", "maritime or aviation")
		seed    = flag.Int64("seed", 42, "deterministic seed")
		vessels = flag.Int("vessels", 50, "number of vessels (maritime)")
		flights = flag.Int("flights", 40, "number of flights (aviation)")
		minutes = flag.Int("minutes", 60, "simulated duration in minutes")
		out     = flag.String("out", "", "output prefix (writes <out>.wire and <out>.events); stdout when empty")
	)
	flag.Parse()

	var sc *synth.Scenario
	switch *domain {
	case "maritime":
		sc = synth.GenMaritime(synth.MaritimeConfig{
			Seed: *seed, Vessels: *vessels, Duration: time.Duration(*minutes) * time.Minute,
		})
	case "aviation":
		sc = synth.GenAviation(synth.AviationConfig{
			Seed: *seed, Flights: *flights, Duration: time.Duration(*minutes) * time.Minute,
		})
	default:
		log.Fatalf("unknown domain %q", *domain)
	}

	wire := os.Stdout
	if *out != "" {
		f, err := os.Create(*out + ".wire")
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		wire = f
	}
	bw := bufio.NewWriter(wire)
	for _, tl := range sc.WireTimed {
		fmt.Fprintf(bw, "%d %s\n", tl.TS, tl.Line)
	}
	if err := bw.Flush(); err != nil {
		log.Fatal(err)
	}

	if *out != "" {
		f, err := os.Create(*out + ".events")
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		ew := bufio.NewWriter(f)
		for _, ev := range sc.Events {
			fmt.Fprintf(ew, "%s\t%s\t%s\t%d\t%d\t%s\n", ev.Type, ev.Entity, ev.Other, ev.StartTS, ev.EndTS, ev.Area)
		}
		if err := ew.Flush(); err != nil {
			log.Fatal(err)
		}
		log.Printf("wrote %s.wire (%d lines) and %s.events (%d events)",
			*out, len(sc.WireTimed), *out, len(sc.Events))
	}
}
