package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestParseBenchLine(t *testing.T) {
	r, ok := parseBenchLine("BenchmarkServerIngest-4 \t    1177\t   1921907 ns/op\t    264617 lines/sec\t       0 rejected\t  512 B/op\t       3 allocs/op")
	if !ok {
		t.Fatal("line did not parse")
	}
	if r.Name != "BenchmarkServerIngest" || r.Procs != 4 || r.Iterations != 1177 {
		t.Fatalf("header parse: %+v", r)
	}
	if r.NsPerOp != 1921907 {
		t.Fatalf("ns/op = %v", r.NsPerOp)
	}
	if r.BytesPerOp == nil || *r.BytesPerOp != 512 || r.AllocsPerOp == nil || *r.AllocsPerOp != 3 {
		t.Fatalf("benchmem parse: %+v", r)
	}
	if r.Metrics["lines/sec"] != 264617 || r.Metrics["rejected"] != 0 {
		t.Fatalf("custom metrics: %v", r.Metrics)
	}
}

// writeSnap marshals a snapshot into dir and returns its path.
func writeSnap(t *testing.T, dir, name string, benches []result) string {
	t.Helper()
	raw, err := json.Marshal(snapshot{Benchmarks: benches})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func fp(v float64) *float64 { return &v }

// -diff must gate B/op and allocs/op alongside ns/op and lines/sec, and
// treat a formerly alloc-free benchmark growing allocations as an outright
// failure (no percentage to budget).
func TestDiffGatesMemRegressions(t *testing.T) {
	dir := t.TempDir()
	oldPath := writeSnap(t, dir, "old.json", []result{
		{Name: "BenchmarkHot", NsPerOp: 100, BytesPerOp: fp(1000), AllocsPerOp: fp(10)},
		{Name: "BenchmarkPinned", NsPerOp: 100, BytesPerOp: fp(0), AllocsPerOp: fp(0)},
	})
	within := writeSnap(t, dir, "within.json", []result{
		{Name: "BenchmarkHot", NsPerOp: 105, BytesPerOp: fp(1100), AllocsPerOp: fp(11)},
		{Name: "BenchmarkPinned", NsPerOp: 105, BytesPerOp: fp(0), AllocsPerOp: fp(0)},
	})
	if err := runDiff(oldPath, within, ".", 20); err != nil {
		t.Fatalf("within-budget diff failed: %v", err)
	}
	allocRegress := writeSnap(t, dir, "allocs.json", []result{
		{Name: "BenchmarkHot", NsPerOp: 100, BytesPerOp: fp(1000), AllocsPerOp: fp(15)},
		{Name: "BenchmarkPinned", NsPerOp: 100, BytesPerOp: fp(0), AllocsPerOp: fp(0)},
	})
	err := runDiff(oldPath, allocRegress, ".", 20)
	if err == nil || !strings.Contains(err.Error(), "allocs/op") {
		t.Fatalf("allocs/op regression not gated: %v", err)
	}
	unpinned := writeSnap(t, dir, "unpinned.json", []result{
		{Name: "BenchmarkHot", NsPerOp: 100, BytesPerOp: fp(1000), AllocsPerOp: fp(10)},
		{Name: "BenchmarkPinned", NsPerOp: 100, BytesPerOp: fp(48), AllocsPerOp: fp(1)},
	})
	err = runDiff(oldPath, unpinned, ".", 20)
	if err == nil || !strings.Contains(err.Error(), "regressed 0 -> 1") {
		t.Fatalf("alloc-free pin break not gated: %v", err)
	}
	// Report-only mode (budget 0) never fails on numbers.
	if err := runDiff(oldPath, unpinned, ".", 0); err != nil {
		t.Fatalf("report-only diff failed: %v", err)
	}
}

func TestParseBenchLineRejectsNoise(t *testing.T) {
	for _, line := range []string{
		"goos: linux",
		"BenchmarkFoo", // header echo without results
		"PASS",
		"ok  \tgithub.com/x\t1.2s",
		"Benchmarking is fun",
	} {
		if _, ok := parseBenchLine(line); ok {
			t.Fatalf("parsed non-result line %q", line)
		}
	}
}
