package main

import "testing"

func TestParseBenchLine(t *testing.T) {
	r, ok := parseBenchLine("BenchmarkServerIngest-4 \t    1177\t   1921907 ns/op\t    264617 lines/sec\t       0 rejected\t  512 B/op\t       3 allocs/op")
	if !ok {
		t.Fatal("line did not parse")
	}
	if r.Name != "BenchmarkServerIngest" || r.Procs != 4 || r.Iterations != 1177 {
		t.Fatalf("header parse: %+v", r)
	}
	if r.NsPerOp != 1921907 {
		t.Fatalf("ns/op = %v", r.NsPerOp)
	}
	if r.BytesPerOp == nil || *r.BytesPerOp != 512 || r.AllocsPerOp == nil || *r.AllocsPerOp != 3 {
		t.Fatalf("benchmem parse: %+v", r)
	}
	if r.Metrics["lines/sec"] != 264617 || r.Metrics["rejected"] != 0 {
		t.Fatalf("custom metrics: %v", r.Metrics)
	}
}

func TestParseBenchLineRejectsNoise(t *testing.T) {
	for _, line := range []string{
		"goos: linux",
		"BenchmarkFoo", // header echo without results
		"PASS",
		"ok  \tgithub.com/x\t1.2s",
		"Benchmarking is fun",
	} {
		if _, ok := parseBenchLine(line); ok {
			t.Fatalf("parsed non-result line %q", line)
		}
	}
}
