// datacron-benchjson turns `go test -json -bench` output into a compact
// benchmark snapshot for the repo's perf trajectory: one JSON document with
// ns/op, B/op, allocs/op and every custom metric (lines/sec, compression,
// wal-records, ...) per benchmark, sorted for stable diffs. CI runs it on
// the bench-smoke step and uploads the result; committed snapshots live at
// the repo root as BENCH_<n>.json, one per recorded PR, so a regression
// shows up as a diff between consecutive snapshots rather than a feeling.
//
//	go test -json -bench . -benchtime 1x -benchmem -run '^$' ./... \
//	  | datacron-benchjson -out BENCH_2.json
//
// Plain (non -json) `go test -bench` output is accepted too: lines that do
// not parse as test2json events are treated as raw benchmark output.
//
// With -diff it compares two snapshots instead of reading stdin and can
// gate CI on a regression budget:
//
//	datacron-benchjson -diff -bench 'ServerIngest$|QueryBlockScan' \
//	  -max-regress 20 BENCH_2.json bench-snapshot.json
//
// ns/op regressions (slower), lines/sec regressions (less throughput), and
// B/op / allocs/op regressions (more garbage per op) count against the
// budget; other custom metrics are reported but not gated, since their
// direction is benchmark-specific. An alloc count that was 0 in the old
// snapshot and is nonzero in the new one fails outright — alloc-free hot
// paths are pinned, not budgeted. A gated benchmark missing from the new
// snapshot fails too — deleting a perf gate should be a visible act.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"
)

// event is the subset of test2json's output record we need.
type event struct {
	Action  string `json:"Action"`
	Package string `json:"Package"`
	Output  string `json:"Output"`
}

// result is one benchmark's parsed numbers. Metrics holds the custom
// b.ReportMetric units beyond the standard three.
type result struct {
	Package     string             `json:"package,omitempty"`
	Name        string             `json:"name"`
	Procs       int                `json:"procs,omitempty"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  *float64           `json:"bytes_per_op,omitempty"`
	AllocsPerOp *float64           `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// snapshot is the whole document.
type snapshot struct {
	Generated  string   `json:"generated"`
	GoVersion  string   `json:"go"`
	GOOS       string   `json:"goos"`
	GOARCH     string   `json:"goarch"`
	CPU        string   `json:"cpu,omitempty"`
	Benchmarks []result `json:"benchmarks"`
}

func main() {
	out := flag.String("out", "", "write the snapshot here (default stdout)")
	diff := flag.Bool("diff", false, "compare two snapshot files (old new) instead of reading stdin")
	benchRe := flag.String("bench", ".", "-diff: regexp of benchmark names to compare")
	maxRegress := flag.Float64("max-regress", 0, "-diff: fail when a compared benchmark regresses more than this percentage (0 = report only)")
	flag.Parse()

	if *diff {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "datacron-benchjson: -diff wants exactly two snapshot files: old new")
			os.Exit(2)
		}
		if err := runDiff(flag.Arg(0), flag.Arg(1), *benchRe, *maxRegress); err != nil {
			fmt.Fprintln(os.Stderr, "datacron-benchjson:", err)
			os.Exit(1)
		}
		return
	}

	snap := snapshot{
		Generated: time.Now().UTC().Format(time.RFC3339),
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
	}
	consume := func(pkg, text string) {
		if cpu, ok := strings.CutPrefix(strings.TrimSpace(text), "cpu: "); ok {
			snap.CPU = cpu
			return
		}
		if r, ok := parseBenchLine(text); ok {
			r.Package = pkg
			snap.Benchmarks = append(snap.Benchmarks, r)
		}
	}
	// test2json splits a benchmark's result line across output events when
	// the run is slow (the name flushes before the numbers), so per-package
	// chunks are reassembled into lines before parsing.
	partial := map[string]string{}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "{") {
			var ev event
			if err := json.Unmarshal([]byte(line), &ev); err == nil {
				if ev.Action != "output" {
					continue
				}
				buf := partial[ev.Package] + ev.Output
				for {
					nl := strings.IndexByte(buf, '\n')
					if nl < 0 {
						break
					}
					consume(ev.Package, buf[:nl])
					buf = buf[nl+1:]
				}
				partial[ev.Package] = buf
				continue
			}
		}
		consume("", line)
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "datacron-benchjson: read stdin:", err)
		os.Exit(1)
	}
	for pkg, rest := range partial {
		if rest != "" {
			consume(pkg, rest)
		}
	}
	sort.Slice(snap.Benchmarks, func(i, j int) bool {
		a, b := snap.Benchmarks[i], snap.Benchmarks[j]
		if a.Package != b.Package {
			return a.Package < b.Package
		}
		return a.Name < b.Name
	})

	enc, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "datacron-benchjson:", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "datacron-benchjson:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "datacron-benchjson: wrote %d benchmarks to %s\n", len(snap.Benchmarks), *out)
}

// parseBenchLine parses one `go test -bench` result line:
//
//	BenchmarkName-8  	  1177	  1921907 ns/op	  264617 lines/sec	  0 B/op	  3 allocs/op
//
// Returns ok=false for anything that is not a benchmark result.
func parseBenchLine(line string) (result, bool) {
	if !strings.HasPrefix(line, "Benchmark") {
		return result{}, false
	}
	fields := strings.Fields(line)
	// Name, iterations, then value/unit pairs.
	if len(fields) < 4 || len(fields)%2 != 0 {
		return result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return result{}, false
	}
	r := result{Name: fields[0], Iterations: iters}
	if i := strings.LastIndex(r.Name, "-"); i > 0 {
		if procs, err := strconv.Atoi(r.Name[i+1:]); err == nil {
			r.Name, r.Procs = r.Name[:i], procs
		}
	}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return result{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			r.NsPerOp = v
		case "B/op":
			r.BytesPerOp = &v
		case "allocs/op":
			r.AllocsPerOp = &v
		default:
			if r.Metrics == nil {
				r.Metrics = map[string]float64{}
			}
			r.Metrics[unit] = v
		}
	}
	return r, true
}

// loadSnapshot reads one snapshot file.
func loadSnapshot(path string) (*snapshot, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var snap snapshot
	if err := json.Unmarshal(raw, &snap); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &snap, nil
}

// benchKey identifies one benchmark across snapshots.
func benchKey(r result) string {
	if r.Package == "" {
		return r.Name
	}
	return r.Package + " " + r.Name
}

// runDiff compares the benchmarks of two snapshots whose names match re
// and enforces the regression budget.
func runDiff(oldPath, newPath, re string, maxRegress float64) error {
	rx, err := regexp.Compile(re)
	if err != nil {
		return fmt.Errorf("-bench %q: %w", re, err)
	}
	oldSnap, err := loadSnapshot(oldPath)
	if err != nil {
		return err
	}
	newSnap, err := loadSnapshot(newPath)
	if err != nil {
		return err
	}
	newBy := make(map[string]result, len(newSnap.Benchmarks))
	for _, r := range newSnap.Benchmarks {
		newBy[benchKey(r)] = r
	}

	pct := func(regress float64) string { return fmt.Sprintf("%+.1f%%", regress) }
	var failures []string
	compared := 0
	for _, oldR := range oldSnap.Benchmarks {
		if !rx.MatchString(oldR.Name) {
			continue
		}
		newR, ok := newBy[benchKey(oldR)]
		if !ok {
			failures = append(failures, fmt.Sprintf("%s: missing from %s", oldR.Name, newPath))
			continue
		}
		compared++
		// ns/op: higher is a regression.
		if oldR.NsPerOp > 0 {
			regress := (newR.NsPerOp - oldR.NsPerOp) / oldR.NsPerOp * 100
			fmt.Printf("%-55s ns/op     %14.0f -> %14.0f  %s\n", oldR.Name, oldR.NsPerOp, newR.NsPerOp, pct(regress))
			if maxRegress > 0 && regress > maxRegress {
				failures = append(failures, fmt.Sprintf("%s: ns/op regressed %s (budget %.0f%%)", oldR.Name, pct(regress), maxRegress))
			}
		}
		// B/op and allocs/op: higher is a regression. A hot path that was
		// alloc-free in the old snapshot must stay alloc-free — 0 -> n has no
		// percentage, so it fails the budget outright.
		gateMem := func(unit string, oldV, newV *float64) {
			if oldV == nil || newV == nil {
				return
			}
			switch {
			case *oldV > 0:
				regress := (*newV - *oldV) / *oldV * 100
				fmt.Printf("%-55s %-9s %14.0f -> %14.0f  %s\n", oldR.Name, unit, *oldV, *newV, pct(regress))
				if maxRegress > 0 && regress > maxRegress {
					failures = append(failures, fmt.Sprintf("%s: %s regressed %s (budget %.0f%%)", oldR.Name, unit, pct(regress), maxRegress))
				}
			case *newV > 0:
				fmt.Printf("%-55s %-9s %14.0f -> %14.0f  was alloc-free\n", oldR.Name, unit, *oldV, *newV)
				if maxRegress > 0 {
					failures = append(failures, fmt.Sprintf("%s: %s regressed 0 -> %.0f", oldR.Name, unit, *newV))
				}
			default:
				fmt.Printf("%-55s %-9s %14.0f -> %14.0f\n", oldR.Name, unit, *oldV, *newV)
			}
		}
		gateMem("B/op", oldR.BytesPerOp, newR.BytesPerOp)
		gateMem("allocs/op", oldR.AllocsPerOp, newR.AllocsPerOp)
		// lines/sec: lower is a regression. Other metrics are informational.
		for unit, oldV := range oldR.Metrics {
			newV, okM := newR.Metrics[unit]
			if !okM || oldV == 0 {
				continue
			}
			if unit == "lines/sec" {
				regress := (oldV - newV) / oldV * 100
				fmt.Printf("%-55s %-9s %14.0f -> %14.0f  %s\n", oldR.Name, unit, oldV, newV, pct(regress))
				if maxRegress > 0 && regress > maxRegress {
					failures = append(failures, fmt.Sprintf("%s: %s regressed %s (budget %.0f%%)", oldR.Name, unit, pct(regress), maxRegress))
				}
			} else {
				fmt.Printf("%-55s %-9s %14.2f -> %14.2f\n", oldR.Name, unit, oldV, newV)
			}
		}
	}
	if compared == 0 && len(failures) == 0 {
		return fmt.Errorf("no benchmark in %s matches -bench %q", oldPath, re)
	}
	if len(failures) > 0 {
		return fmt.Errorf("%d regression(s):\n  %s", len(failures), strings.Join(failures, "\n  "))
	}
	fmt.Printf("ok: %d benchmark(s) within budget\n", compared)
	return nil
}
