// datacron-benchjson turns `go test -json -bench` output into a compact
// benchmark snapshot for the repo's perf trajectory: one JSON document with
// ns/op, B/op, allocs/op and every custom metric (lines/sec, compression,
// wal-records, ...) per benchmark, sorted for stable diffs. CI runs it on
// the bench-smoke step and uploads the result; committed snapshots live at
// the repo root as BENCH_<n>.json, one per recorded PR, so a regression
// shows up as a diff between consecutive snapshots rather than a feeling.
//
//	go test -json -bench . -benchtime 1x -benchmem -run '^$' ./... \
//	  | datacron-benchjson -out BENCH_2.json
//
// Plain (non -json) `go test -bench` output is accepted too: lines that do
// not parse as test2json events are treated as raw benchmark output.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"
)

// event is the subset of test2json's output record we need.
type event struct {
	Action  string `json:"Action"`
	Package string `json:"Package"`
	Output  string `json:"Output"`
}

// result is one benchmark's parsed numbers. Metrics holds the custom
// b.ReportMetric units beyond the standard three.
type result struct {
	Package     string             `json:"package,omitempty"`
	Name        string             `json:"name"`
	Procs       int                `json:"procs,omitempty"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  *float64           `json:"bytes_per_op,omitempty"`
	AllocsPerOp *float64           `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// snapshot is the whole document.
type snapshot struct {
	Generated  string   `json:"generated"`
	GoVersion  string   `json:"go"`
	GOOS       string   `json:"goos"`
	GOARCH     string   `json:"goarch"`
	CPU        string   `json:"cpu,omitempty"`
	Benchmarks []result `json:"benchmarks"`
}

func main() {
	out := flag.String("out", "", "write the snapshot here (default stdout)")
	flag.Parse()

	snap := snapshot{
		Generated: time.Now().UTC().Format(time.RFC3339),
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
	}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		pkg, text := "", line
		if strings.HasPrefix(line, "{") {
			var ev event
			if err := json.Unmarshal([]byte(line), &ev); err == nil {
				if ev.Action != "output" {
					continue
				}
				pkg, text = ev.Package, strings.TrimRight(ev.Output, "\n")
			}
		}
		if cpu, ok := strings.CutPrefix(strings.TrimSpace(text), "cpu: "); ok {
			snap.CPU = cpu
			continue
		}
		if r, ok := parseBenchLine(text); ok {
			r.Package = pkg
			snap.Benchmarks = append(snap.Benchmarks, r)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "datacron-benchjson: read stdin:", err)
		os.Exit(1)
	}
	sort.Slice(snap.Benchmarks, func(i, j int) bool {
		a, b := snap.Benchmarks[i], snap.Benchmarks[j]
		if a.Package != b.Package {
			return a.Package < b.Package
		}
		return a.Name < b.Name
	})

	enc, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "datacron-benchjson:", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "datacron-benchjson:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "datacron-benchjson: wrote %d benchmarks to %s\n", len(snap.Benchmarks), *out)
}

// parseBenchLine parses one `go test -bench` result line:
//
//	BenchmarkName-8  	  1177	  1921907 ns/op	  264617 lines/sec	  0 B/op	  3 allocs/op
//
// Returns ok=false for anything that is not a benchmark result.
func parseBenchLine(line string) (result, bool) {
	if !strings.HasPrefix(line, "Benchmark") {
		return result{}, false
	}
	fields := strings.Fields(line)
	// Name, iterations, then value/unit pairs.
	if len(fields) < 4 || len(fields)%2 != 0 {
		return result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return result{}, false
	}
	r := result{Name: fields[0], Iterations: iters}
	if i := strings.LastIndex(r.Name, "-"); i > 0 {
		if procs, err := strconv.Atoi(r.Name[i+1:]); err == nil {
			r.Name, r.Procs = r.Name[:i], procs
		}
	}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return result{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			r.NsPerOp = v
		case "B/op":
			r.BytesPerOp = &v
		case "allocs/op":
			r.AllocsPerOp = &v
		default:
			if r.Metrics == nil {
				r.Metrics = map[string]float64{}
			}
			r.Metrics[unit] = v
		}
	}
	return r, true
}
